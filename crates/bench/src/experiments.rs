//! One function per paper artifact.

use crate::scale::Scales;
use smartssd::{
    compose, ArrivalModel, ChromeTraceSink, CounterSink, DeviceKind, InterfaceMode, RunError,
    RunOptions, RunReport, System, SystemBuilder, SystemConfig, TenantLoad, TenantSpec, TraceSink,
    Workload, WorkloadOptions, WorkloadReport,
};
use smartssd_host::interface::{roadmap, RoadmapPoint};
use smartssd_query::{PlannerConfig, PlannerInputs, Query, Route};
use smartssd_sim::SimTime;
use smartssd_storage::{Layout, PAGE_SIZE};
use smartssd_workload::{
    join_query, q1, q14, q6, queries, synthetic::synthetic_schema, synthetic64_r, synthetic64_s,
    tpch,
};

/// Loads LINEITEM and PART into a freshly built system, cold.
fn load_tpch(mut sys: System, s: &Scales) -> System {
    sys.load_table_rows(
        queries::LINEITEM,
        &tpch::lineitem_schema(),
        tpch::lineitem_rows(s.tpch_sf, s.seed),
    )
    .expect("load lineitem");
    sys.load_table_rows(
        queries::PART,
        &tpch::part_schema(),
        tpch::part_rows(s.tpch_sf, s.seed),
    )
    .expect("load part");
    sys.finish_load();
    sys
}

/// Builds a system with LINEITEM (and PART) loaded, cold.
pub fn tpch_system(kind: DeviceKind, layout: Layout, s: &Scales) -> System {
    load_tpch(SystemBuilder::new(kind, layout).build(), s)
}

/// [`tpch_system`] with a trace sink attached at build time.
pub fn tpch_system_traced(
    kind: DeviceKind,
    layout: Layout,
    s: &Scales,
    sink: impl TraceSink + 'static,
) -> System {
    load_tpch(SystemBuilder::new(kind, layout).trace(sink).build(), s)
}

/// Builds a system with the synthetic join tables loaded, cold.
pub fn synth_system(kind: DeviceKind, layout: Layout, s: &Scales) -> System {
    let mut sys = SystemBuilder::new(kind, layout).build();
    sys.load_table_rows(
        queries::SYNTH_R,
        &synthetic_schema(),
        synthetic64_r(s.synth_scale, s.seed),
    )
    .expect("load R");
    sys.load_table_rows(
        queries::SYNTH_S,
        &synthetic_schema(),
        synthetic64_s(s.synth_scale, s.synth_scale, s.seed),
    )
    .expect("load S");
    sys.finish_load();
    sys
}

/// Figure 1: host-interface vs SSD-internal bandwidth trend.
pub fn fig1() -> Vec<RoadmapPoint> {
    roadmap()
}

/// Table 2 result: achieved sequential read bandwidth, MB/s.
#[derive(Debug, Clone, Copy)]
pub struct Tab2 {
    /// External path (SAS SSD through the host interface).
    pub external_mbps: f64,
    /// Internal path (Smart SSD reading to its own DRAM).
    pub internal_mbps: f64,
}

impl Tab2 {
    /// Internal / external — the paper's 2.8x headroom.
    pub fn ratio(&self) -> f64 {
        self.internal_mbps / self.external_mbps
    }
}

/// Table 2: maximum sequential read bandwidth with 32-page (256 KB) I/Os.
pub fn tab2() -> Tab2 {
    use smartssd_flash::{FlashConfig, FlashSsd};
    use smartssd_host::{InterfaceKind, PageSource, SsdHostPath};
    let n: u64 = 8192;
    // A real formatted page so the host path's validation passes.
    let page = {
        let schema =
            smartssd_storage::Schema::from_pairs(&[("x", smartssd_storage::DataType::Int64)]);
        let mut b = smartssd_storage::TableBuilder::new("t", schema, Layout::Nsm);
        b.extend((0..1i64).map(|v| vec![smartssd_storage::Datum::I64(v)]));
        b.finish().pages()[0].clone()
    };
    // Internal: read pages straight into device DRAM.
    let mut ssd = FlashSsd::new(FlashConfig::default());
    for lba in 0..n {
        ssd.write(lba, page.raw().clone(), SimTime::ZERO).unwrap();
    }
    ssd.reset_timing();
    let mut done = SimTime::ZERO;
    for lba in 0..n {
        done = done.max(ssd.read(lba, SimTime::ZERO).unwrap().1.end);
    }
    let internal = (n * PAGE_SIZE as u64) as f64 / done.as_secs_f64() / 1e6;
    // External: same device behind the SAS link.
    let mut ssd2 = FlashSsd::new(FlashConfig::default());
    for lba in 0..n {
        ssd2.write(lba, page.raw().clone(), SimTime::ZERO).unwrap();
    }
    ssd2.reset_timing();
    let mut path = SsdHostPath::new(ssd2, InterfaceKind::Sas6, 0);
    let mut done = SimTime::ZERO;
    for lba in 0..n {
        done = done.max(path.read_page(lba, SimTime::ZERO).unwrap().1);
    }
    let external = (n * PAGE_SIZE as u64) as f64 / done.as_secs_f64() / 1e6;
    Tab2 {
        external_mbps: external,
        internal_mbps: internal,
    }
}

/// Elapsed-time bars for a three-configuration figure (SSD baseline,
/// Smart SSD NSM, Smart SSD PAX).
#[derive(Debug, Clone)]
pub struct Bars {
    /// Regular SSD, host execution, NSM layout.
    pub ssd: RunReport,
    /// Smart SSD pushdown on NSM pages.
    pub smart_nsm: RunReport,
    /// Smart SSD pushdown on PAX pages.
    pub smart_pax: RunReport,
}

impl Bars {
    /// Elapsed seconds in figure order.
    pub fn seconds(&self) -> [f64; 3] {
        [
            self.ssd.result.elapsed.as_secs_f64(),
            self.smart_nsm.result.elapsed.as_secs_f64(),
            self.smart_pax.result.elapsed.as_secs_f64(),
        ]
    }

    /// The paper's headline: SSD time over Smart-SSD-PAX time.
    pub fn speedup_pax(&self) -> f64 {
        self.seconds()[0] / self.seconds()[2]
    }

    /// SSD time over Smart-SSD-NSM time.
    pub fn speedup_nsm(&self) -> f64 {
        self.seconds()[0] / self.seconds()[1]
    }
}

/// Runs one query on the figure's three configurations.
fn three_bars<F>(build: F, query: &Query) -> Bars
where
    F: Fn(DeviceKind, Layout) -> System,
{
    let mut ssd_sys = build(DeviceKind::Ssd, Layout::Nsm);
    let ssd = ssd_sys.run(query, RunOptions::default()).expect("ssd run");
    let mut nsm_sys = build(DeviceKind::SmartSsd, Layout::Nsm);
    let smart_nsm = nsm_sys
        .run(query, RunOptions::default())
        .expect("smart nsm run");
    let mut pax_sys = build(DeviceKind::SmartSsd, Layout::Pax);
    let smart_pax = pax_sys
        .run(query, RunOptions::default())
        .expect("smart pax run");
    Bars {
        ssd,
        smart_nsm,
        smart_pax,
    }
}

/// Figure 3: TPC-H Q6 elapsed time (paper: PAX 1.7x over the SSD).
pub fn fig3(s: &Scales) -> Bars {
    three_bars(|k, l| tpch_system(k, l, s), &q6())
}

/// Figure 7: TPC-H Q14 elapsed time (paper: PAX 1.3x over the SSD).
pub fn fig7(s: &Scales) -> Bars {
    three_bars(|k, l| tpch_system(k, l, s), &q14())
}

/// One selectivity point of Figure 5.
#[derive(Debug, Clone)]
pub struct Fig5Point {
    /// Predicate selectivity (fraction of S rows qualifying).
    pub selectivity: f64,
    /// The three bars at this selectivity.
    pub bars: Bars,
}

/// Figure 5: the selection-with-join query swept over selectivity
/// (paper: up to 2.2x at 1%, saturating toward 1x at 100%).
pub fn fig5(s: &Scales, selectivities: &[f64]) -> Vec<Fig5Point> {
    // Build each system once and reuse it across the sweep: only the
    // predicate literal changes.
    let mut ssd_sys = synth_system(DeviceKind::Ssd, Layout::Nsm, s);
    let mut nsm_sys = synth_system(DeviceKind::SmartSsd, Layout::Nsm, s);
    let mut pax_sys = synth_system(DeviceKind::SmartSsd, Layout::Pax, s);
    selectivities
        .iter()
        .map(|&sel| {
            let query = join_query(sel);
            // The paper's protocol is cold: nothing cached between runs.
            ssd_sys.clear_cache();
            nsm_sys.clear_cache();
            pax_sys.clear_cache();
            Fig5Point {
                selectivity: sel,
                bars: Bars {
                    ssd: ssd_sys.run(&query, RunOptions::default()).expect("ssd run"),
                    smart_nsm: nsm_sys.run(&query, RunOptions::default()).expect("nsm run"),
                    smart_pax: pax_sys.run(&query, RunOptions::default()).expect("pax run"),
                },
            }
        })
        .collect()
}

/// One row of Table 3.
#[derive(Debug, Clone)]
pub struct Tab3Row {
    /// Configuration label, as in the paper's column heads.
    pub config: String,
    /// The full run report.
    pub report: RunReport,
}

/// Table 3: elapsed time and energy for TPC-H Q6 on all four
/// configurations.
pub fn tab3(s: &Scales) -> Vec<Tab3Row> {
    let query = q6();
    let configs: [(DeviceKind, Layout, &str); 4] = [
        (DeviceKind::Hdd, Layout::Nsm, "SAS HDD"),
        (DeviceKind::Ssd, Layout::Nsm, "SAS SSD"),
        (DeviceKind::SmartSsd, Layout::Nsm, "Smart SSD (NSM)"),
        (DeviceKind::SmartSsd, Layout::Pax, "Smart SSD (PAX)"),
    ];
    configs
        .iter()
        .map(|&(kind, layout, label)| {
            let mut sys = tpch_system(kind, layout, s);
            Tab3Row {
                config: label.into(),
                report: sys.run(&query, RunOptions::default()).expect("tab3 run"),
            }
        })
        .collect()
}

/// The plan diagrams of Figures 4 and 6, as text.
pub fn plans() -> String {
    format!(
        "{}\n{}\n{}",
        join_query(0.01).describe_pushdown(),
        q14().describe_pushdown(),
        q6().describe_pushdown()
    )
}

/// One point of the companion-paper scan sweep.
#[derive(Debug, Clone)]
pub struct ScanSweepPoint {
    /// Predicate selectivity.
    pub selectivity: f64,
    /// Whether the scan aggregates (vs returning rows).
    pub with_agg: bool,
    /// The three bars.
    pub bars: Bars,
}

/// The companion paper \[7\]'s single-table-scan sweeps: selectivity x
/// {row-returning, aggregating}.
pub fn scan_sweep_exp(s: &Scales, selectivities: &[f64]) -> Vec<ScanSweepPoint> {
    let mut out = Vec::new();
    let mut ssd_sys = synth_system(DeviceKind::Ssd, Layout::Nsm, s);
    let mut nsm_sys = synth_system(DeviceKind::SmartSsd, Layout::Nsm, s);
    let mut pax_sys = synth_system(DeviceKind::SmartSsd, Layout::Pax, s);
    for &with_agg in &[false, true] {
        for &sel in selectivities {
            let query = smartssd_workload::scan_sweep(sel, with_agg, 4);
            ssd_sys.clear_cache();
            nsm_sys.clear_cache();
            pax_sys.clear_cache();
            out.push(ScanSweepPoint {
                selectivity: sel,
                with_agg,
                bars: Bars {
                    ssd: ssd_sys.run(&query, RunOptions::default()).expect("ssd"),
                    smart_nsm: nsm_sys.run(&query, RunOptions::default()).expect("nsm"),
                    smart_pax: pax_sys.run(&query, RunOptions::default()).expect("pax"),
                },
            });
        }
    }
    out
}

/// One point of the Smart SSD array scaling experiment.
#[derive(Debug, Clone)]
pub struct ArrayPoint {
    /// Number of devices.
    pub devices: usize,
    /// Coordinator completion time.
    pub elapsed: SimTime,
}

/// Discussion-section extension: Q6-shaped aggregation over a LINEITEM
/// partitioned across an array of Smart SSDs.
pub fn array_exp(s: &Scales, device_counts: &[usize]) -> Vec<ArrayPoint> {
    use smartssd::SmartSsdArray;
    device_counts
        .iter()
        .map(|&n| {
            let mut arr =
                SmartSsdArray::new(n, SystemConfig::new(DeviceKind::SmartSsd, Layout::Pax));
            arr.load_partitioned(
                queries::LINEITEM,
                &tpch::lineitem_schema(),
                tpch::lineitem_rows(s.tpch_sf, s.seed),
            )
            .expect("load");
            arr.finish_load();
            let r = arr.run_agg(&q6()).expect("array q6");
            ArrayPoint {
                devices: n,
                elapsed: r.elapsed,
            }
        })
        .collect()
}

/// One point of the buffer-pool residency experiment.
#[derive(Debug, Clone)]
pub struct CachePoint {
    /// Fraction of LINEITEM pre-cached in the buffer pool.
    pub resident: f64,
    /// Route the planner chose.
    pub route: Route,
    /// Elapsed time of the run.
    pub elapsed: SimTime,
}

/// Discussion-section extension: Q6 on the Smart SSD with 0..100% of
/// LINEITEM pre-cached; the planner should stop pushing down once enough of
/// the table is resident.
pub fn cache_exp(s: &Scales, fractions: &[f64]) -> Vec<CachePoint> {
    let planner = PlannerConfig::default();
    fractions
        .iter()
        .map(|&f| {
            let mut sys = tpch_system(DeviceKind::SmartSsd, Layout::Pax, s);
            sys.warm_cache(queries::LINEITEM, f).expect("warm");
            let inputs = PlannerInputs {
                selectivity: 0.006,
                tuples_per_page: 55.0,
                ..PlannerInputs::default()
            };
            let report = sys
                .run(&q6(), RunOptions::planned(planner.clone(), inputs))
                .expect("cache run");
            CachePoint {
                resident: f,
                route: report.route,
                elapsed: report.result.elapsed,
            }
        })
        .collect()
}

/// One point of the device-hardware-scaling experiment.
#[derive(Debug, Clone)]
pub struct DeviceScalingPoint {
    /// Configuration label.
    pub label: &'static str,
    /// Device cores x clock.
    pub cores: usize,
    /// Device core clock, MHz.
    pub mhz: u64,
    /// Configured internal DRAM bus bandwidth, MB/s.
    pub internal_mbps: u64,
    /// Q6 elapsed on this device, seconds.
    pub smart_secs: f64,
    /// Speedup over the fixed regular-SSD baseline.
    pub speedup: f64,
}

/// Section 5's hardware roadmap: "The next step must be to add in more
/// hardware (CPU, SRAM and DRAM) ... crucial to achieve the 10X or more
/// benefit that Smart SSDs have the potential of providing."
///
/// Sweeps device CPU and the internal data path while the SSD baseline
/// stays fixed: more cores alone saturate at the internal-bandwidth bound;
/// the 10x regime needs both.
pub fn device_scaling_exp(s: &Scales) -> Vec<DeviceScalingPoint> {
    let query = q6();
    // Fixed baseline: the paper's regular SSD, host execution.
    let mut base_sys = tpch_system(DeviceKind::Ssd, Layout::Nsm, s);
    let base = base_sys
        .run(&query, RunOptions::default())
        .expect("baseline")
        .result
        .elapsed;
    // (label, cores, MHz, channels, channel MB/s, dram MB/s)
    let configs: [(&'static str, usize, u64, usize, u64, u64); 5] = [
        ("paper prototype", 2, 400, 8, 400, 1_600),
        ("more cores", 8, 400, 8, 400, 1_600),
        ("faster cores", 8, 1_000, 8, 400, 1_600),
        ("wider internal path", 8, 1_000, 16, 800, 6_400),
        ("projected device", 16, 1_600, 32, 800, 12_800),
    ];
    configs
        .iter()
        .map(|&(label, cores, mhz, channels, ch_mbps, dram_mbps)| {
            let mut sys = SystemBuilder::new(DeviceKind::SmartSsd, Layout::Pax)
                .tweak(|cfg| {
                    cfg.smart.cpu_cores = cores;
                    cfg.smart.cpu_hz = mhz * 1_000_000;
                    cfg.flash.channels = channels;
                    cfg.flash.channel_bw = ch_mbps * 1_000_000;
                    cfg.flash.dram_bw = dram_mbps * 1_000_000;
                })
                .build();
            sys.load_table_rows(
                queries::LINEITEM,
                &tpch::lineitem_schema(),
                tpch::lineitem_rows(s.tpch_sf, s.seed),
            )
            .expect("load");
            sys.finish_load();
            let elapsed = sys
                .run(&query, RunOptions::default())
                .expect("smart")
                .result
                .elapsed;
            DeviceScalingPoint {
                label,
                cores,
                mhz,
                internal_mbps: dram_mbps,
                smart_secs: elapsed.as_secs_f64(),
                speedup: base.as_secs_f64() / elapsed.as_secs_f64(),
            }
        })
        .collect()
}

/// One point of the interface-generation experiment.
#[derive(Debug, Clone)]
pub struct InterfacePoint {
    /// Interface under test.
    pub interface: smartssd_host::InterfaceKind,
    /// Baseline (host execution) elapsed, seconds.
    pub ssd_secs: f64,
    /// Pushdown elapsed, seconds.
    pub smart_secs: f64,
}

impl InterfacePoint {
    /// Pushdown speedup under this interface.
    pub fn speedup(&self) -> f64 {
        self.ssd_secs / self.smart_secs
    }
}

/// Section 3 notes the protocol "could be extended for PCIe"; Figure 1's
/// whole premise is that the host interface keeps falling behind. This
/// sweep runs the Figure 5 join (1% selectivity, host path I/O-bound) on
/// successive interface generations: pushdown's advantage shrinks as the
/// pipe widens and inverts once the interface outruns the device's
/// internal path.
pub fn interface_exp(s: &Scales) -> Vec<InterfacePoint> {
    use smartssd_host::InterfaceKind;
    let query = join_query(0.01);
    [
        InterfaceKind::Sas3,
        InterfaceKind::Sas6,
        InterfaceKind::Sas12,
        InterfaceKind::PcieGen2x4,
        InterfaceKind::PcieGen3x4,
    ]
    .iter()
    .map(|&interface| {
        let build = |kind: DeviceKind, layout: Layout| {
            let mut sys = SystemBuilder::new(kind, layout)
                .interface(interface)
                .build();
            sys.load_table_rows(
                queries::SYNTH_R,
                &synthetic_schema(),
                synthetic64_r(s.synth_scale, s.seed),
            )
            .expect("load R");
            sys.load_table_rows(
                queries::SYNTH_S,
                &synthetic_schema(),
                synthetic64_s(s.synth_scale, s.synth_scale, s.seed),
            )
            .expect("load S");
            sys.finish_load();
            sys
        };
        let mut ssd = build(DeviceKind::Ssd, Layout::Nsm);
        let mut smart = build(DeviceKind::SmartSsd, Layout::Pax);
        InterfacePoint {
            interface,
            ssd_secs: ssd
                .run(&query, RunOptions::default())
                .expect("ssd")
                .result
                .elapsed
                .as_secs_f64(),
            smart_secs: smart
                .run(&query, RunOptions::default())
                .expect("smart")
                .result
                .elapsed
                .as_secs_f64(),
        }
    })
    .collect()
}

/// One point of the concurrent-sessions experiment.
#[derive(Debug, Clone)]
pub struct ConcurrencyPoint {
    /// Number of concurrent sessions.
    pub sessions: usize,
    /// Makespan: time until the last session finishes.
    pub makespan_secs: f64,
    /// Makespan normalized by the single-session time.
    pub slowdown: f64,
}

/// Builds a Smart SSD system with only LINEITEM loaded, cold, after
/// applying `f` to the builder — the shape all workload-level concurrency
/// experiments share (PART would only add unread pages).
fn lineitem_system(s: &Scales, f: impl FnOnce(SystemBuilder) -> SystemBuilder) -> System {
    let mut sys = f(SystemBuilder::new(DeviceKind::SmartSsd, Layout::Pax)).build();
    sys.load_table_rows(
        queries::LINEITEM,
        &tpch::lineitem_schema(),
        tpch::lineitem_rows(s.tpch_sf, s.seed),
    )
    .expect("load lineitem");
    sys.finish_load();
    sys
}

/// N simultaneous Q6 pushdown sessions under device-only timing: the
/// makespan of a [`Workload::burst`] with the interface taken out of the
/// picture, so the curve isolates device-internal contention (embedded
/// CPU and flash path), with scan sharing on or off and optionally a
/// scaled device CPU (`cores_mhz`).
fn q6_burst_makespan(
    s: &Scales,
    n: usize,
    shared: bool,
    cores_mhz: Option<(usize, u64)>,
) -> Result<WorkloadReport, RunError> {
    let mut sys = lineitem_system(s, |b| {
        b.shared_scans(shared).tweak(|cfg| {
            cfg.smart.max_sessions = n.max(4);
            if let Some((cores, mhz)) = cores_mhz {
                cfg.smart.cpu_cores = cores;
                cfg.smart.cpu_hz = mhz * 1_000_000;
            }
        })
    });
    sys.run_workload(
        &Workload::burst(&q6(), n),
        WorkloadOptions::new().interface(InterfaceMode::Direct),
    )
}

/// "Considering the impact of concurrent queries" is on the paper's
/// research-opportunities list (Section 5). N identical Q6 sessions open
/// simultaneously on one device and share its CPU and flash path; the
/// slowdown is always normalized against the true single-session makespan,
/// whatever range the sweep covers.
///
/// Queries run through [`smartssd::System::run_workload`] and its
/// fault-tolerant session machinery, so an injected device fault propagates
/// as a [`RunError`] instead of crashing the experiment.
pub fn concurrent_exp(
    s: &Scales,
    session_counts: &[usize],
) -> Result<Vec<ConcurrencyPoint>, RunError> {
    let base = q6_burst_makespan(s, 1, false, None)?.makespan.as_secs_f64();
    session_counts
        .iter()
        .map(|&n| {
            let secs = if n == 1 {
                base
            } else {
                q6_burst_makespan(s, n, false, None)?.makespan.as_secs_f64()
            };
            Ok(ConcurrencyPoint {
                sessions: n,
                makespan_secs: secs,
                slowdown: secs / base,
            })
        })
        .collect()
}

/// One point of a workload-level concurrency curve.
#[derive(Debug, Clone)]
pub struct WorkloadCurvePoint {
    /// Number of concurrent sessions in the burst.
    pub sessions: usize,
    /// Time until the last session finishes, seconds.
    pub makespan_secs: f64,
    /// Makespan over the single-session makespan on the same device.
    pub slowdown: f64,
    /// Queries per second of simulated time.
    pub throughput_qps: f64,
    /// Median query latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile query latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile query latency, milliseconds.
    pub p99_ms: f64,
    /// Flash page reads the workload issued.
    pub flash_reads: u64,
    /// Page reads served by the device's shared-scan window instead of
    /// flash.
    pub shared_hits: u64,
}

/// One curve of the concurrency experiment: a device configuration with
/// scan sharing on or off, swept over session counts.
#[derive(Debug, Clone)]
pub struct ConcurrencyCurve {
    /// Device configuration label.
    pub config: &'static str,
    /// Embedded CPU cores.
    pub cores: usize,
    /// Embedded CPU clock, MHz.
    pub mhz: u64,
    /// Whether device-side scan sharing was enabled.
    pub shared_scans: bool,
    /// One point per session count.
    pub points: Vec<WorkloadCurvePoint>,
}

/// The workload-level concurrency experiment: N simultaneous Q6 pushdown
/// sessions, with device-side scan sharing off vs on, on two devices.
///
/// On the paper-era prototype (2 cores at 400 MHz) the embedded CPU is the
/// bottleneck at ~99% utilization, so sharing the flash reads barely bends
/// the curve — the serialization the paper's Section 5 worries about is
/// real. On a Section 5 scaled device (8 cores at 1 GHz, same flash) the
/// flash path dominates instead, and scan sharing collapses the N-session
/// flash traffic to ~1x: the slowdown curve flattens well below N.
pub fn concurrency_exp(
    s: &Scales,
    session_counts: &[usize],
) -> Result<Vec<ConcurrencyCurve>, RunError> {
    let configs: [(&'static str, usize, u64); 2] =
        [("paper prototype", 2, 400), ("scaled device", 8, 1_000)];
    let mut curves = Vec::new();
    for &(config, cores, mhz) in &configs {
        for shared in [false, true] {
            let base = q6_burst_makespan(s, 1, shared, Some((cores, mhz)))?
                .makespan
                .as_secs_f64();
            let points = session_counts
                .iter()
                .map(|&n| {
                    let rep = q6_burst_makespan(s, n, shared, Some((cores, mhz)))?;
                    let secs = rep.makespan.as_secs_f64();
                    Ok(WorkloadCurvePoint {
                        sessions: n,
                        makespan_secs: secs,
                        slowdown: secs / base,
                        throughput_qps: rep.throughput_qps,
                        p50_ms: rep.latency.p50.as_secs_f64() * 1e3,
                        p95_ms: rep.latency.p95.as_secs_f64() * 1e3,
                        p99_ms: rep.latency.p99.as_secs_f64() * 1e3,
                        flash_reads: rep.flash_reads,
                        shared_hits: rep.shared_hits,
                    })
                })
                .collect::<Result<Vec<_>, RunError>>()?;
            curves.push(ConcurrencyCurve {
                config,
                cores,
                mhz,
                shared_scans: shared,
                points,
            });
        }
    }
    Ok(curves)
}

/// One point of the host-parallelism ablation.
#[derive(Debug, Clone)]
pub struct HostParallelPoint {
    /// Host intra-query degree of parallelism.
    pub dop: usize,
    /// Host-route Q6 elapsed, seconds.
    pub ssd_secs: f64,
    /// Smart SSD (PAX) pushdown speedup over this baseline.
    pub pushdown_speedup: f64,
}

/// Ablation the paper's setup invites: its baseline runs the scan on one
/// host thread ("a prototype version of SQL Server that only works on a
/// selected class of queries"). A production DBMS would parallelize the
/// scan — how much of the Smart SSD's Q6 win survives?
pub fn host_parallel_exp(s: &Scales, dops: &[usize]) -> Vec<HostParallelPoint> {
    // Fixed pushdown reference.
    let mut smart = tpch_system(DeviceKind::SmartSsd, Layout::Pax, s);
    let smart_secs = smart
        .run(&q6(), RunOptions::default())
        .expect("smart q6")
        .result
        .elapsed
        .as_secs_f64();
    dops.iter()
        .map(|&dop| {
            let mut sys = SystemBuilder::new(DeviceKind::Ssd, Layout::Nsm)
                .host_dop(dop)
                .build();
            sys.load_table_rows(
                queries::LINEITEM,
                &tpch::lineitem_schema(),
                tpch::lineitem_rows(s.tpch_sf, s.seed),
            )
            .expect("load");
            sys.finish_load();
            let ssd_secs = sys
                .run(&q6(), RunOptions::default())
                .expect("host q6")
                .result
                .elapsed
                .as_secs_f64();
            HostParallelPoint {
                dop,
                ssd_secs,
                pushdown_speedup: ssd_secs / smart_secs,
            }
        })
        .collect()
}

/// Result of the grouped-aggregation (TPC-H Q1) extension experiment.
#[derive(Debug, Clone)]
pub struct Q1Result {
    /// Host-route elapsed on the regular SSD, seconds.
    pub ssd_secs: f64,
    /// Pushdown elapsed on the paper-era Smart SSD, seconds.
    pub smart_secs: f64,
    /// Pushdown elapsed on a Section 5 scaled-up device, seconds.
    pub scaled_secs: f64,
    /// The grouped output rows (flag, status, sums..., count).
    pub rows: Vec<smartssd_storage::Tuple>,
}

/// Extension: grouped aggregation (TPC-H Q1) pushed into the device. On the
/// paper-era prototype it only breaks even (every row aggregates, the
/// embedded CPU saturates); on a scaled device it wins — Section 5's
/// hardware argument applied to a heavier operator.
pub fn q1_exp(s: &Scales) -> Q1Result {
    let query = q1();
    let mut ssd = tpch_system(DeviceKind::Ssd, Layout::Nsm, s);
    let host = ssd.run(&query, RunOptions::default()).expect("ssd q1");
    let mut smart = tpch_system(DeviceKind::SmartSsd, Layout::Pax, s);
    let dev = smart.run(&query, RunOptions::default()).expect("smart q1");
    let mut big = SystemBuilder::new(DeviceKind::SmartSsd, Layout::Pax)
        .tweak(|cfg| {
            cfg.smart.cpu_cores = 8;
            cfg.smart.cpu_hz = 1_000_000_000;
            cfg.flash.channels = 16;
            cfg.flash.dram_bw = 6_400_000_000;
        })
        .build();
    big.load_table_rows(
        queries::LINEITEM,
        &tpch::lineitem_schema(),
        tpch::lineitem_rows(s.tpch_sf, s.seed),
    )
    .expect("load");
    big.finish_load();
    let scaled = big.run(&query, RunOptions::default()).expect("scaled q1");
    Q1Result {
        ssd_secs: host.result.elapsed.as_secs_f64(),
        smart_secs: dev.result.elapsed.as_secs_f64(),
        scaled_secs: scaled.result.elapsed.as_secs_f64(),
        rows: dev.result.rows.clone(),
    }
}

/// One scenario row of the fault-injection observability experiment.
#[derive(Debug, Clone)]
pub struct FaultPoint {
    /// Scenario label.
    pub label: &'static str,
    /// Injected correctable-read-error rate (per read, out of 2^32).
    pub ecc_retry_rate: u32,
    /// Injected silent-corruption rate (per read, out of 2^32).
    pub silent_corruption_rate: u32,
    /// Where the query actually ran after any fallback.
    pub route: Route,
    /// Simulated elapsed seconds, recovery time included.
    pub elapsed_secs: f64,
    /// Whether rows and aggregates are bit-identical to the clean scenario.
    pub matches_clean: bool,
    /// Fault counters absorbed during the run.
    pub faults: smartssd_sim::FaultCounters,
}

/// Fault-injection observability: Q6 pushdown under increasing injected
/// fault rates. Recovery is about *time*, never answers — every scenario
/// must produce rows and aggregates bit-identical to the clean run, while
/// the counters and elapsed times show what the recovery machinery paid.
pub fn fault_injection_exp(s: &Scales) -> Vec<FaultPoint> {
    const SCENARIOS: &[(&str, u32, u32)] = &[
        ("clean", 0, 0),
        ("ecc-retries", u32::MAX / 64, 0),
        ("silent-corruption", 0, u32::MAX / 256),
        ("mixed", u32::MAX / 64, u32::MAX / 256),
    ];
    let query = q6();
    let mut clean: Option<(Vec<smartssd_storage::Tuple>, Vec<i128>)> = None;
    SCENARIOS
        .iter()
        .map(|&(label, ecc_retry_rate, silent_corruption_rate)| {
            let mut sys = SystemBuilder::new(DeviceKind::SmartSsd, Layout::Pax)
                .fault_rates(ecc_retry_rate, 0, silent_corruption_rate)
                .build();
            sys.load_table_rows(
                queries::LINEITEM,
                &tpch::lineitem_schema(),
                tpch::lineitem_rows(s.tpch_sf, s.seed),
            )
            .expect("load lineitem");
            sys.finish_load();
            let rep = sys
                .run(&query, RunOptions::default())
                .expect("q6 under injected faults");
            let answer = (rep.result.rows.clone(), rep.result.agg_values.clone());
            let baseline = clean.get_or_insert_with(|| answer.clone());
            FaultPoint {
                label,
                ecc_retry_rate,
                silent_corruption_rate,
                route: rep.route,
                elapsed_secs: rep.result.elapsed.as_secs_f64(),
                matches_clean: answer == *baseline,
                faults: rep.faults,
            }
        })
        .collect()
}

/// One route of the trace experiment: the same query on the host or device
/// path, with the full simulated-time trace captured.
#[derive(Debug, Clone)]
pub struct TracePoint {
    /// Query name.
    pub query: String,
    /// Route this run was forced onto.
    pub route: Route,
    /// Simulated elapsed seconds.
    pub elapsed_secs: f64,
    /// Chrome `trace_event` JSON for the run (one pid per subsystem, one
    /// tid per channel/core). Open in Perfetto or `chrome://tracing`.
    pub chrome_json: String,
    /// Per-resource busy fraction (busy-ns over elapsed-ns), sorted by
    /// resource name. Fed by the same occupancy intervals as the trace.
    pub busy_fractions: Vec<(String, f64)>,
}

/// Traced run pair: Q6 on the Smart SSD (PAX), once forced onto the device
/// route and once onto the host route. Each route runs twice — once under a
/// [`ChromeTraceSink`] for the timeline and once under a [`CounterSink`]
/// for the busy-ns totals; the simulation is deterministic, so both runs
/// see identical timing.
pub fn trace_exp(s: &Scales) -> Vec<TracePoint> {
    let query = q6();
    [Route::Device, Route::Host]
        .iter()
        .map(|&route| {
            let mut sys =
                tpch_system_traced(DeviceKind::SmartSsd, Layout::Pax, s, ChromeTraceSink::new());
            let rep = sys
                .run(&query, RunOptions::routed(route))
                .expect("traced run");
            let chrome_json = rep
                .trace
                .chrome_json()
                .expect("chrome sink yields json")
                .to_string();
            let mut counted =
                tpch_system_traced(DeviceKind::SmartSsd, Layout::Pax, s, CounterSink::new());
            let crep = counted
                .run(&query, RunOptions::routed(route))
                .expect("counted run");
            assert_eq!(
                rep.result.elapsed, crep.result.elapsed,
                "deterministic sim: sink choice must not change timing"
            );
            let elapsed_ns = crep.result.elapsed.as_nanos();
            let snap = crep.trace.counters().expect("counter sink yields metrics");
            let busy_fractions = snap
                .busy_ns
                .iter()
                .map(|(&name, &ns)| (name.to_string(), ns as f64 / elapsed_ns as f64))
                .collect();
            TracePoint {
                query: query.name.clone(),
                route,
                elapsed_secs: rep.result.elapsed.as_secs_f64(),
                chrome_json,
                busy_fractions,
            }
        })
        .collect()
}

/// Traced concurrent workload: what the timeline of overlapping queries
/// looks like.
#[derive(Debug, Clone)]
pub struct WorkloadTracePoint {
    /// Number of queries in the workload.
    pub sessions: usize,
    /// Workload makespan, seconds.
    pub makespan_secs: f64,
    /// Chrome `trace_event` JSON: the session track carries one lane per
    /// in-flight query, so overlap is visible directly in Perfetto.
    pub chrome_json: String,
}

/// A traced four-query Q6 workload on the Smart SSD (PAX) with scan
/// sharing on: queries arrive as a seeded open stream over the full linked
/// protocol, and every session's OPEN/GET/CLOSE phases land on that
/// query's own lane of the session track.
pub fn workload_trace_exp(s: &Scales) -> WorkloadTracePoint {
    let n = 4;
    let mut sys = lineitem_system(s, |b| b.shared_scans(true).trace(ChromeTraceSink::new()));
    let workload = Workload::open_stream(&q6(), n, SimTime::from_nanos(2_000_000), s.seed);
    let rep = sys
        .run_workload(&workload, WorkloadOptions::default())
        .expect("traced workload");
    WorkloadTracePoint {
        sessions: n,
        makespan_secs: rep.makespan.as_secs_f64(),
        chrome_json: rep
            .trace
            .chrome_json()
            .expect("chrome sink yields json")
            .to_string(),
    }
}

/// One point of the graceful-degradation sweep: a fault scenario crossed
/// with the circuit breaker on or off.
#[derive(Debug, Clone)]
pub struct DegradePoint {
    /// Scenario label.
    pub label: &'static str,
    /// Injected whole-device crash rate (per session open, out of 2^32).
    pub crash_rate: u32,
    /// Injected correctable flash-read-error rate (per read, out of 2^32).
    pub ecc_retry_rate: u32,
    /// Whether health-aware routing (the circuit breaker) was enabled.
    pub breaker: bool,
    /// Queries that completed (on either route).
    pub completed: u64,
    /// Arrivals shed at the admission-queue bound.
    pub rejected: u64,
    /// Waiters shed past their start-of-service deadline.
    pub deadline_missed: u64,
    /// Completed queries per simulated second.
    pub throughput_qps: f64,
    /// Simulated time until the last completion, seconds.
    pub makespan_secs: f64,
    /// 95th-percentile completed-query latency, milliseconds.
    pub p95_ms: f64,
    /// Device-route attempts that fell back to the host mid-run.
    pub fallbacks: u64,
    /// Breaker state changes during the workload.
    pub breaker_transitions: u64,
    /// Whether every completed answer is bit-identical to the clean run's.
    pub matches_clean: bool,
    /// Fault counters absorbed during the workload.
    pub faults: smartssd_sim::FaultCounters,
}

/// One point of the simulator-throughput sweep: how fast the simulator
/// chews through an open Q6-class arrival stream, in wall-clock terms.
#[derive(Debug, Clone)]
pub struct SimspeedPoint {
    /// Number of arrivals in the open stream.
    pub arrivals: usize,
    /// Completed queries (must equal `arrivals` on a clean run).
    pub completed: usize,
    /// Flash page reads the whole stream issued.
    pub flash_reads: u64,
    /// Simulated makespan, seconds.
    pub sim_secs: f64,
    /// Best wall-clock time over the reps, seconds.
    pub wall_secs: f64,
    /// Arrivals processed per wall-clock second — the headline metric.
    pub arrivals_per_sec: f64,
    /// Simulated nanoseconds advanced per wall-clock second.
    pub sim_ns_per_wall_sec: f64,
}

/// Row count of the simspeed table: a LINEITEM slice small enough that one
/// query scans a handful of pages, so the sweep measures scheduler and
/// timeline overhead rather than kernel arithmetic.
pub const SIMSPEED_ROWS: u64 = 360;

/// Mean inter-arrival gap of the simspeed stream: 86.4 ms, i.e. one million
/// queries per simulated day — the "million-query day" the sweep simulates.
pub const SIMSPEED_MEAN_GAP: SimTime = SimTime::from_micros(86_400);

/// Builds the simspeed system: a Smart SSD with a [`SIMSPEED_ROWS`]-row
/// LINEITEM slice loaded, cold. Table size is fixed (not scaled by
/// [`Scales`]) so throughput numbers are comparable across runs.
pub fn simspeed_system(seed: u64) -> System {
    let mut sys = SystemBuilder::new(DeviceKind::SmartSsd, Layout::Pax).build();
    sys.load_table_rows(
        queries::LINEITEM,
        &tpch::lineitem_schema(),
        tpch::lineitem_rows(SIMSPEED_ROWS as f64 / tpch::LINEITEM_ROWS_SF1 as f64, seed),
    )
    .expect("load lineitem slice");
    sys.finish_load();
    sys
}

/// The open Q6 arrival stream the simspeed sweep replays.
pub fn simspeed_workload(n: usize, seed: u64) -> Workload {
    Workload::open_stream(&q6(), n, SIMSPEED_MEAN_GAP, seed)
}

/// Simulator-throughput sweep: replays open streams of `counts` Q6 arrivals
/// under device-only timing and reports arrivals per wall-clock second and
/// simulated-ns advanced per wall-clock second. Each point takes the best
/// of `reps` runs on a freshly built (cold) system; simulated figures are
/// deterministic, wall-clock figures are machine-dependent.
pub fn simspeed_exp(
    s: &Scales,
    counts: &[usize],
    reps: u32,
) -> Result<Vec<SimspeedPoint>, RunError> {
    let opts = || WorkloadOptions::new().interface(InterfaceMode::Direct);
    let mut points = Vec::new();
    for &n in counts {
        let workload = simspeed_workload(n, s.seed);
        let mut best_wall = f64::INFINITY;
        let mut rep = None;
        for _ in 0..reps.max(1) {
            let mut sys = simspeed_system(s.seed);
            let t = std::time::Instant::now();
            let r = sys.run_workload(&workload, opts())?;
            best_wall = best_wall.min(t.elapsed().as_secs_f64());
            rep = Some(r);
        }
        let rep = rep.expect("at least one rep");
        let sim_ns = rep.makespan.as_nanos();
        points.push(SimspeedPoint {
            arrivals: n,
            completed: rep.completions.len(),
            flash_reads: rep.flash_reads,
            sim_secs: rep.makespan.as_secs_f64(),
            wall_secs: best_wall,
            arrivals_per_sec: n as f64 / best_wall,
            sim_ns_per_wall_sec: sim_ns as f64 / best_wall,
        });
    }
    Ok(points)
}

/// One cell of the serving-scale sweep ([`servescale_exp`]).
#[derive(Debug, Clone)]
pub struct ServescalePoint {
    /// Admission engine: `"heap"` (keyed min-heap) or `"scan"` (the
    /// linear-scan reference, the pre-heap scheduler).
    pub engine: &'static str,
    /// Registered tenants contending for the single device session slot.
    pub tenants: usize,
    /// Total arrivals across all tenants (per-tenant count × tenants).
    pub arrivals: usize,
    /// Arrivals that completed.
    pub completed: u64,
    /// Arrivals shed by their cancellation instant.
    pub canceled: u64,
    /// Simulated makespan, seconds.
    pub sim_secs: f64,
    /// Best wall-clock time over the reps, seconds.
    pub wall_secs: f64,
    /// Arrivals processed per wall-clock second — the headline metric.
    pub arrivals_per_sec: f64,
    /// Simulated nanoseconds advanced per wall-clock second.
    pub sim_ns_per_wall_sec: f64,
}

/// LINEITEM slice size for the serving-scale sweep. Deliberately smaller
/// than [`SIMSPEED_ROWS`]: the sweep measures the admission scheduler, and
/// a tiny table keeps per-query device simulation (identical across
/// engines) from masking the scheduler's share of the wall clock.
pub const SERVESCALE_ROWS: u64 = 64;

/// Builds the serving-scale system: a [`SERVESCALE_ROWS`]-row LINEITEM
/// slice with `max_sessions = 1`, so every arrival but the one in service
/// queues and the sweep measures admission scheduling — heap maintenance,
/// slab traffic, cancellation events — not kernel arithmetic.
pub fn servescale_system(seed: u64) -> System {
    let mut sys = SystemBuilder::new(DeviceKind::SmartSsd, Layout::Pax)
        .tweak(|c| c.smart.max_sessions = 1)
        .build();
    sys.load_table_rows(
        queries::LINEITEM,
        &tpch::lineitem_schema(),
        tpch::lineitem_rows(
            SERVESCALE_ROWS as f64 / tpch::LINEITEM_ROWS_SF1 as f64,
            seed,
        ),
    )
    .expect("load lineitem slice");
    sys.finish_load();
    sys
}

/// The serving-scale tenant registry: `tenants` loads of
/// `arrivals / tenants` Q6 queries each, offered at an aggregate ρ ≈ 2 of
/// the single slot's capacity — an overload day, so the wait set stays
/// saturated and roughly half the arrivals abandon (patience: 8 service
/// times) instead of reaching the device. That load shape puts the
/// *admission path* on the critical path: every arrival is pushed,
/// canceled-or-granted, and popped through the wait set, while device
/// work (identical across engines) stays a minority of the wall clock.
/// Weights cycle 1..=8 (distinct finish-tag slopes) and models alternate
/// Uniform/Exponential, so heap refreshes, tombstones, and cancellation
/// events are all on the measured path.
pub fn servescale_loads(tenants: usize, arrivals: usize, service: SimTime) -> Vec<TenantLoad> {
    let query = q6();
    let per_tenant = (arrivals / tenants).max(1);
    // Aggregate offered rate tenants/gap = 2/service.
    let gap = SimTime::from_nanos(service.as_nanos() * tenants as u64 / 2);
    (0..tenants)
        .map(|i| {
            TenantLoad::new(
                TenantSpec::new(format!("t{i}")).weight(1 + (i % 8) as u64),
                query.clone(),
                per_tenant,
                gap,
            )
            .model(if i % 2 == 0 {
                ArrivalModel::Uniform
            } else {
                ArrivalModel::Exponential
            })
            .cancel_after(SimTime::from_nanos(service.as_nanos() * 8))
        })
        .collect()
}

/// Serving-scale sweep: streams each `(tenants, arrivals, reference)` cell
/// through [`System::run_serving`] (device-only timing, one session slot)
/// and reports arrivals per wall-clock second. `reference = true` cells
/// run the linear-scan admission engine — the pre-heap scheduler, kept as
/// the executable specification — so the JSON carries its own speedup
/// baseline. Each cell takes the best of `reps` runs on a freshly built
/// (cold) system; simulated figures are deterministic in `seed`,
/// wall-clock figures are machine-dependent.
pub fn servescale_exp(
    seed: u64,
    cells: &[(usize, usize, bool)],
    reps: u32,
) -> Result<Vec<ServescalePoint>, RunError> {
    // One probe run prices Q6 device service on this table, so load sizing
    // is invariant to kernel-cost changes.
    let service = {
        let mut probe = servescale_system(seed);
        probe
            .run(&q6(), RunOptions::routed(Route::Device))?
            .result
            .elapsed
    };
    let mut points = Vec::new();
    for &(tenants, arrivals, reference) in cells {
        let loads = servescale_loads(tenants, arrivals, service);
        let total: usize = loads.iter().map(|l| l.count()).sum();
        let mut best_wall = f64::INFINITY;
        let mut rep = None;
        for _ in 0..reps.max(1) {
            let mut sys = servescale_system(seed);
            let opts = WorkloadOptions::new()
                .interface(InterfaceMode::Direct)
                .reference_admission(reference);
            let t = std::time::Instant::now();
            let r = sys.run_serving(&loads, seed, opts)?;
            best_wall = best_wall.min(t.elapsed().as_secs_f64());
            rep = Some(r);
        }
        let rep = rep.expect("at least one rep");
        points.push(ServescalePoint {
            engine: if reference { "scan" } else { "heap" },
            tenants,
            arrivals: total,
            completed: rep.completions.len() as u64,
            canceled: rep.canceled,
            sim_secs: rep.makespan.as_secs_f64(),
            wall_secs: best_wall,
            arrivals_per_sec: total as f64 / best_wall,
            sim_ns_per_wall_sec: rep.makespan.as_nanos() as f64 / best_wall,
        });
    }
    Ok(points)
}

/// Graceful degradation under sustained device faults (robustness
/// extension; not a paper figure): a 16-query Q6 open stream over the
/// linked protocol, swept across crash/ECC fault rates with the circuit
/// breaker off and on. With the breaker off every arrival still probes the
/// crashing firmware, pays the wasted `OPEN` transfer plus reset downtime,
/// and only then falls back to the host; with it on, sustained failures
/// trip the breaker and later arrivals route straight to the host-side
/// block path (a separate failure domain), so throughput degrades smoothly
/// instead of cliff-collapsing. Completed answers stay bit-identical to
/// the clean run in every cell.
pub fn degrade_exp(s: &Scales) -> Result<Vec<DegradePoint>, RunError> {
    const SCENARIOS: &[(&str, u32, u32)] = &[
        ("clean", 0, 0),
        ("light", u32::MAX / 16, u32::MAX / 256),
        ("moderate", u32::MAX / 4, u32::MAX / 128),
        ("sustained", u32::MAX, u32::MAX / 128),
    ];
    let query = q6();
    // Size the arrival stream, firmware reset latency, deadline, and
    // breaker windows in units of one clean host-route run, so the sweep's
    // shape is scale-invariant: the host path is the degradation target,
    // and "hopelessly late" means several host-runs of queueing.
    let host_run = {
        let mut probe = lineitem_system(s, |b| b);
        probe
            .run(&query, RunOptions::routed(Route::Host))?
            .result
            .elapsed
    };
    let scaled = |mult_num: u64, mult_den: u64| {
        SimTime::from_nanos(host_run.as_nanos() * mult_num / mult_den)
    };
    let n = 16;
    let reset_latency = scaled(2, 1);
    let policy = smartssd::BreakerPolicy {
        enabled: true,
        failure_threshold: 3,
        // The cooldown spans several inter-arrival gaps: once tripped, the
        // breaker probes the device only a few times over the whole
        // stream, so the tail of the workload routes straight to the host
        // instead of waiting out one more firmware reset.
        window: scaled(8, 1),
        cooldown: scaled(6, 1),
        ..smartssd::BreakerPolicy::default()
    };
    let opts = WorkloadOptions::new()
        .queue_bound(n)
        .deadline(scaled(24, 1));
    let mut clean_answer: Option<Vec<i128>> = None;
    let mut points = Vec::new();
    for &(label, crash_rate, ecc_retry_rate) in SCENARIOS {
        for breaker in [false, true] {
            let mut sys = lineitem_system(s, |b| {
                let b = b
                    .fault_rates(ecc_retry_rate, 0, 0)
                    .crash_faults(crash_rate, reset_latency);
                if breaker {
                    b.breaker(policy)
                } else {
                    b
                }
            });
            let workload = Workload::open_stream(&query, n, scaled(5, 4), s.seed);
            let rep = sys.run_workload(&workload, opts.clone())?;
            let baseline = clean_answer.get_or_insert_with(|| {
                rep.completions
                    .first()
                    .map(|c| c.result.agg_values.clone())
                    .unwrap_or_default()
            });
            let matches_clean = !rep.completions.is_empty()
                && rep
                    .completions
                    .iter()
                    .all(|c| c.result.agg_values == *baseline);
            points.push(DegradePoint {
                label,
                crash_rate,
                ecc_retry_rate,
                breaker,
                completed: rep.completions.len() as u64,
                rejected: rep.rejected,
                deadline_missed: rep.deadline_missed,
                throughput_qps: rep.throughput_qps,
                makespan_secs: rep.makespan.as_secs_f64(),
                p95_ms: rep.latency.p95.as_secs_f64() * 1e3,
                fallbacks: rep.faults.fallbacks,
                breaker_transitions: rep.breaker_transitions.len() as u64,
                matches_clean,
                faults: rep.faults,
            });
        }
    }
    Ok(points)
}

/// One point of the fleet scaling sweep: Q6 scattered across N shards.
#[derive(Debug, Clone)]
pub struct FleetScalePoint {
    /// Number of devices (= shards).
    pub devices: usize,
    /// Coordinator completion time (slowest shard + gather).
    pub elapsed: SimTime,
    /// Speedup over the single-device fleet.
    pub speedup: f64,
}

/// One cell of the fleet degradation matrix: a Q6 stream on a 16-device
/// fleet, healthy vs one-device-dead, breaker off vs on.
#[derive(Debug, Clone)]
pub struct FleetDegradePoint {
    /// Scenario label.
    pub label: &'static str,
    /// Whether the per-device circuit breakers were enabled.
    pub breaker: bool,
    /// Devices with a permanent crash fault armed.
    pub dead_devices: usize,
    /// Queries in the stream.
    pub queries: usize,
    /// Completed queries per simulated second.
    pub throughput_qps: f64,
    /// Fraction of the *ideal degraded* throughput (healthy throughput
    /// scaled by alive/total devices) this cell achieved.
    pub of_ideal: f64,
    /// 95th-percentile query latency, milliseconds.
    pub p95_ms: f64,
    /// Shards that degraded mid-run after a recoverable session fault.
    pub fallbacks: u64,
    /// Shard runs that ended on the host route.
    pub host_shard_runs: u64,
    /// Shards raced by a speculative host re-run.
    pub speculated: u64,
    /// Speculative re-runs that beat the device session.
    pub spec_wins: u64,
    /// Whether a post-stream Q6 answer is bit-identical to the healthy
    /// fleet's.
    pub matches_clean: bool,
    /// Faults absorbed across the whole stream.
    pub faults: smartssd_sim::FaultCounters,
}

/// Results of the fleet experiment: the scaling curve and the
/// degradation-under-crash matrix.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// Q6 completion time vs shard count.
    pub scaling: Vec<FleetScalePoint>,
    /// Degradation matrix on [`FLEET_DEGRADE_DEVICES`] devices.
    pub degradation: Vec<FleetDegradePoint>,
}

/// Fleet size of the degradation matrix.
pub const FLEET_DEGRADE_DEVICES: usize = 16;

/// Builds a LINEITEM-loaded fleet of `n` devices, cold.
fn tpch_fleet(
    n: usize,
    s: &Scales,
    opts: smartssd::FleetOptions,
    breaker: bool,
) -> smartssd::SmartSsdFleet {
    let mut b = SystemBuilder::new(DeviceKind::SmartSsd, Layout::Pax);
    if breaker {
        let mut pol = smartssd::BreakerPolicy::enabled();
        // A dead-device probe costs a full firmware reset wait (~5 ms,
        // several query lifetimes), so probe sparingly: the default 8 ms
        // cooldown would re-probe nearly every query.
        pol.cooldown = SimTime::from_micros(1_000_000);
        b = b.breaker(pol);
    }
    let mut fleet = b.build_fleet(n, opts);
    fleet
        .load_partitioned(
            queries::LINEITEM,
            &tpch::lineitem_schema(),
            tpch::lineitem_rows(s.tpch_sf, s.seed),
        )
        .expect("load lineitem");
    fleet.finish_load();
    fleet
}

/// Parallel-DBMS extension (paper Section 4.3): Q6 scattered across a fleet
/// of Smart SSDs over the full linked session protocol, gathered and merged
/// on the host.
///
/// Two sweeps: (1) scaling — one cold Q6 per shard count in
/// `device_counts`, speedup measured against the single-device fleet; and
/// (2) degradation — a `stream_len`-query Q6 stream on a 16-device fleet,
/// healthy vs one crashed device, breaker off vs on, with straggler
/// speculation enabled. With the breaker off every query keeps probing the
/// dead device and pays its firmware reset latency before falling back;
/// with it on the breaker trips after the first failures and later queries
/// route that shard straight to the host block path — a separate failure
/// domain — so one dead device out of 16 costs about one shard of
/// throughput, not an outage.
pub fn fleet_exp(
    s: &Scales,
    device_counts: &[usize],
    stream_len: usize,
) -> Result<FleetResult, RunError> {
    use smartssd::FleetOptions;

    // Sweep 1: scaling. Pure scatter/gather, no speculation.
    let mut scaling = Vec::new();
    let mut base = None;
    for &n in device_counts {
        let mut fleet = tpch_fleet(n, s, FleetOptions::default(), false);
        let r = fleet.run_agg(&q6())?;
        let elapsed = r.result.elapsed;
        let base_secs = *base.get_or_insert(elapsed.as_secs_f64());
        scaling.push(FleetScalePoint {
            devices: n,
            elapsed,
            speedup: base_secs / elapsed.as_secs_f64(),
        });
    }

    // Sweep 2: degradation under a crashed device, with straggler
    // speculation on (a dead shard is the ultimate straggler).
    let spec_opts = || FleetOptions {
        speculate: true,
        ..FleetOptions::default()
    };
    let stream: Vec<_> = (0..stream_len).map(|_| q6()).collect();
    let n = FLEET_DEGRADE_DEVICES;
    let mut degradation = Vec::new();
    let mut healthy_qps = 0.0;
    let mut clean_answer = None;
    for (label, dead, breaker) in [
        ("healthy", 0usize, false),
        ("one-dead", 1usize, false),
        ("one-dead", 1usize, true),
    ] {
        let mut fleet = tpch_fleet(n, s, spec_opts(), breaker);
        for d in 0..dead {
            fleet.device_mut(d).config_mut().fault_rates.crash_rate = u32::MAX;
        }
        let rep = fleet.run_stream(&stream)?;
        // Answer check: one more Q6 after the stream, against the healthy
        // fleet's answer.
        fleet.clear_host_cache();
        let check = fleet.run_agg(&q6())?;
        let answer = (check.result.agg_values.clone(), check.result.scalar);
        let matches_clean = match &clean_answer {
            None => {
                clean_answer = Some(answer);
                true
            }
            Some(clean) => *clean == answer,
        };
        if dead == 0 && !breaker {
            healthy_qps = rep.throughput_qps;
        }
        let ideal = healthy_qps * (n - dead) as f64 / n as f64;
        degradation.push(FleetDegradePoint {
            label,
            breaker,
            dead_devices: dead,
            queries: rep.queries,
            throughput_qps: rep.throughput_qps,
            of_ideal: if ideal > 0.0 {
                rep.throughput_qps / ideal
            } else {
                0.0
            },
            p95_ms: rep.latency.p95.as_secs_f64() * 1e3,
            fallbacks: rep.fallbacks,
            host_shard_runs: rep.host_shard_runs,
            speculated: rep.speculated,
            spec_wins: rep.spec_wins,
            matches_clean,
            faults: rep.faults,
        });
    }
    Ok(FleetResult {
        scaling,
        degradation,
    })
}

/// One point of the serving load sweep: an open Poisson Q6 stream at a
/// fixed offered utilization against one device session slot.
#[derive(Debug, Clone)]
pub struct ServingLoadPoint {
    /// Offered utilization: service time over mean inter-arrival gap.
    pub rho: f64,
    /// Mean inter-arrival gap of the Poisson stream.
    pub mean_gap: SimTime,
    /// Offered arrivals per simulated second.
    pub offered_qps: f64,
    /// Completed queries per simulated second.
    pub throughput_qps: f64,
    /// Arrivals that completed.
    pub completed: u64,
    /// Arrivals abandoned by their client (patience exhausted).
    pub canceled: u64,
    /// Median completed-query latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile completed-query latency, milliseconds.
    pub p99_ms: f64,
}

/// One tenant's outcome in one scenario of the isolation experiment.
#[derive(Debug, Clone)]
pub struct ServingTenantPoint {
    /// Scenario label: `baseline`, `aggressor+wfq`, or `aggressor+fifo`.
    pub scenario: &'static str,
    /// Whether weighted fair queueing was enabled.
    pub fair: bool,
    /// Tenant name.
    pub tenant: String,
    /// Arrivals tagged with this tenant.
    pub arrivals: u64,
    /// Arrivals that completed.
    pub completed: u64,
    /// Arrivals shed at the tenant's admission bound.
    pub rejected: u64,
    /// Arrivals shed past their start-of-service deadline.
    pub deadline_missed: u64,
    /// Arrivals canceled by client abandonment.
    pub canceled: u64,
    /// Arrivals lost to unrecoverable faults.
    pub failed: u64,
    /// Median completed-query latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile completed-query latency, milliseconds.
    pub p99_ms: f64,
}

/// Result of the serving experiment: the knee sweep plus the per-tenant
/// isolation matrix.
#[derive(Debug, Clone)]
pub struct ServingResult {
    /// One clean device-route Q6 run — the unit every load is sized in.
    pub service_time: SimTime,
    /// Open-system p99-vs-utilization sweep.
    pub knee: Vec<ServingLoadPoint>,
    /// Per-tenant rows of the three isolation scenarios.
    pub isolation: Vec<ServingTenantPoint>,
}

impl ServingResult {
    /// The p99 of one `(scenario, tenant)` cell of the isolation matrix,
    /// in milliseconds (0.0 when absent).
    pub fn isolation_p99_ms(&self, scenario: &str, tenant: &str) -> f64 {
        self.isolation
            .iter()
            .find(|p| p.scenario == scenario && p.tenant == tenant)
            .map(|p| p.p99_ms)
            .unwrap_or(0.0)
    }
}

/// Open-system multi-tenant serving (Section 5 extension; not a paper
/// figure): the Smart SSD as a *shared* production resource.
///
/// Sweep 1 drives one Poisson Q6 stream at offered utilizations from 25%
/// to 2x the single-slot service rate, with 20-service-time client
/// patience: throughput tracks the offered load until the knee, then
/// saturates while p99 climbs to the abandonment ceiling — the classic
/// open-system hockey stick.
///
/// Sweep 2 is the isolation matrix: two well-behaved victims (a lane-0
/// `interactive` tenant and a lane-1 `reporting` tenant) run alone for a
/// baseline, then alongside an `aggressor` flooding at 2x device capacity
/// behind a 16-deep admission bound, once with weighted fair queueing and
/// once with global FIFO admission. The acceptance claim of the serving
/// work: with WFQ on, every victim's p99 stays within 2x of its
/// aggressor-free baseline; with FIFO, victims queue behind the flood and
/// blow far past it. Everything is sized in units of one device-route
/// service time, so the shape is scale-invariant, and every run is
/// deterministic in the seed.
pub fn serving_exp(
    s: &Scales,
    knee_arrivals: usize,
    victim_arrivals: usize,
) -> Result<ServingResult, RunError> {
    let query = q6();
    let service_time = {
        let mut probe = lineitem_system(s, |b| b);
        probe
            .run(&query, RunOptions::routed(Route::Device))?
            .result
            .elapsed
    };
    let frac = |num: u64, den: u64| SimTime::from_nanos(service_time.as_nanos() * num / den);
    // One session slot makes utilization arithmetic exact: capacity is one
    // query per service time, and rho = service_time / mean_gap.
    let serving_system = || lineitem_system(s, |b| b.tweak(|c| c.smart.max_sessions = 1));
    let run = |loads: &[TenantLoad], fair: bool| -> Result<WorkloadReport, RunError> {
        let (workload, tenants) = compose(loads, s.seed);
        let mut opts = WorkloadOptions::new()
            .interface(InterfaceMode::Direct)
            .fair_queueing(fair);
        for t in tenants {
            opts = opts.tenant(t);
        }
        serving_system().run_workload(&workload, opts)
    };

    // Sweep 1: the open-system knee.
    let mut knee = Vec::new();
    for &(num, den) in &[(1u64, 4u64), (2, 4), (3, 4), (7, 8), (1, 1), (9, 8), (2, 1)] {
        let mean_gap = frac(den, num);
        let load = TenantLoad::new(
            TenantSpec::new("open"),
            query.clone(),
            knee_arrivals,
            mean_gap,
        )
        .model(ArrivalModel::Exponential)
        .cancel_after(frac(20, 1));
        let rep = run(&[load], true)?;
        knee.push(ServingLoadPoint {
            rho: num as f64 / den as f64,
            mean_gap,
            offered_qps: 1e9 / mean_gap.as_nanos() as f64,
            throughput_qps: rep.throughput_qps,
            completed: rep.completions.len() as u64,
            canceled: rep.canceled,
            p50_ms: rep.latency.p50.as_secs_f64() * 1e3,
            p99_ms: rep.latency.p99.as_secs_f64() * 1e3,
        });
    }

    // Sweep 2: the isolation matrix. Victims offer a combined ~73% of
    // capacity (enough self-queueing that the baseline p99 is an honest
    // yardstick); the aggressor floods at 2x capacity behind its own
    // 16-deep admission bound, so excess flood is rejected unexecuted
    // while the backlog it does enqueue stays full.
    let victims = || {
        vec![
            TenantLoad::new(
                TenantSpec::new("interactive").weight(8).lane(0),
                query.clone(),
                victim_arrivals,
                frac(3, 1),
            )
            .model(ArrivalModel::Exponential),
            TenantLoad::new(
                TenantSpec::new("reporting").weight(4).lane(1),
                query.clone(),
                victim_arrivals,
                frac(5, 2),
            )
            .model(ArrivalModel::Exponential),
        ]
    };
    let aggressor = || {
        TenantLoad::new(
            TenantSpec::new("aggressor")
                .weight(1)
                .lane(1)
                .queue_bound(16),
            query.clone(),
            victim_arrivals * 8,
            frac(1, 2),
        )
        .model(ArrivalModel::Exponential)
    };
    let mut isolation = Vec::new();
    for (scenario, with_aggressor, fair) in [
        ("baseline", false, true),
        ("aggressor+wfq", true, true),
        ("aggressor+fifo", true, false),
    ] {
        let mut loads = victims();
        if with_aggressor {
            loads.push(aggressor());
        }
        // compose() sub-seeds per tenant index, so appending the aggressor
        // leaves both victims' arrival schedules bit-identical to baseline.
        let rep = run(&loads, fair)?;
        for t in &rep.tenants {
            isolation.push(ServingTenantPoint {
                scenario,
                fair,
                tenant: t.name.clone(),
                arrivals: t.arrivals,
                completed: t.completed,
                rejected: t.rejected,
                deadline_missed: t.deadline_missed,
                canceled: t.canceled,
                failed: t.failed,
                p50_ms: t.latency.p50.as_secs_f64() * 1e3,
                p99_ms: t.latency.p99.as_secs_f64() * 1e3,
            });
        }
    }
    Ok(ServingResult {
        service_time,
        knee,
        isolation,
    })
}

/// One cell of the chaos matrix: a two-tenant Q6 stream through one
/// scripted gray-failure scenario, under one defense stack.
#[derive(Debug, Clone)]
pub struct ChaosPoint {
    /// Fault scenario label.
    pub scenario: &'static str,
    /// Defense stack label: `none`, `breaker`, or `full`.
    pub defense: &'static str,
    /// Total arrivals across both tenants.
    pub arrivals: u64,
    /// Queries that completed (on either route).
    pub completed: u64,
    /// Arrivals shed at admission (brownout).
    pub rejected: u64,
    /// Completed queries per simulated second across the whole stream.
    pub goodput_qps: f64,
    /// Victim (interactive) tenant completions.
    pub victim_completed: u64,
    /// Victim (interactive) tenant 99th-percentile latency, milliseconds.
    pub victim_p99_ms: f64,
    /// Batch tenant completions.
    pub batch_completed: u64,
    /// Batch tenant arrivals shed by brownout.
    pub batch_rejected: u64,
    /// Device-route attempts that fell back to the host mid-run.
    pub fallbacks: u64,
    /// Breaker opens caused by the latency (slow-trip) rule alone.
    pub slow_trips: u64,
    /// Breaker state changes during the stream.
    pub breaker_transitions: u64,
    /// Whether every completed answer is bit-identical to the healthy
    /// run's.
    pub matches_clean: bool,
    /// Fault counters absorbed during the stream.
    pub faults: smartssd_sim::FaultCounters,
}

/// Results of the chaos experiment.
#[derive(Debug, Clone)]
pub struct ChaosResult {
    /// One clean device-route Q6 run — the unit every schedule is sized in.
    pub service_time: SimTime,
    /// The scenario x defense matrix, scenarios outermost.
    pub points: Vec<ChaosPoint>,
}

impl ChaosResult {
    /// Victim p99 of one `(scenario, defense)` cell, in milliseconds
    /// (0.0 when absent).
    pub fn victim_p99_ms(&self, scenario: &str, defense: &str) -> f64 {
        self.points
            .iter()
            .find(|p| p.scenario == scenario && p.defense == defense)
            .map(|p| p.victim_p99_ms)
            .unwrap_or(0.0)
    }
}

/// Gray-failure chaos matrix (robustness extension; not a paper figure):
/// scripted [`smartssd_sim::FaultPlan`] scenarios crossed with defense
/// stacks, measured at the victim tenant's tail.
///
/// A high-weight `interactive` tenant (the victim whose p99 we protect)
/// and a low-weight `batch` tenant together offer ~50% of the single-slot
/// device capacity. Each scenario scripts one gray failure — a 4x or 16x
/// firmware slowdown that opens after a healthy calibration head and never
/// heals, a mid-stream firmware crash, or a persistent ECC burst doubling
/// every read — and replays the *identical* arrival schedule under three
/// defense stacks: `none`, `breaker` (latency-aware slow-trip routing),
/// and `full` (breaker + brownout shedding of the lightest tenant).
///
/// The acceptance claim: in the slowdown scenarios the victim's p99 is
/// strictly ordered `full < breaker < none` — the breaker stops queueing
/// arrivals behind a gray device it can route around, and brownout stops
/// the victim queueing behind batch work the incident has made unpayable.
/// Every completed answer stays bit-identical in every cell, and the whole
/// matrix is deterministic in the seed.
pub fn chaos_exp(s: &Scales, victim_arrivals: usize) -> Result<ChaosResult, RunError> {
    use smartssd::{BreakerPolicy, BrownoutPolicy};
    use smartssd_sim::FaultPlan;

    let query = q6();
    let service_time = {
        let mut probe = lineitem_system(s, |b| b);
        probe
            .run(&query, RunOptions::routed(Route::Device))?
            .result
            .elapsed
    };
    let frac = |num: u64, den: u64| SimTime::from_nanos(service_time.as_nanos() * num / den);

    // The victim offers ~17% of capacity, batch ~33%: comfortable when
    // healthy (a uniform arrival schedule keeps the healthy queue depth
    // at 0-2, so brownout never fires in the healthy cell), hopeless once
    // a slowdown cuts capacity 4-16x.
    let n = victim_arrivals.max(8);
    let horizon = frac(6 * n as u64, 1);
    // The gray window opens after a healthy head long enough to calibrate
    // the breaker's latency baseline, and never closes: a real gray
    // incident outlives any one stream, so detection and routing are the
    // only way out — there is no healthy tail to bail the no-defense run.
    let win_from = frac(18, 1);
    let win_until = SimTime::MAX;
    let mid = SimTime::from_nanos(horizon.as_nanos() / 2);

    // The slowdown scenarios arm the plan on the device *firmware* only
    // (the embedded CPU throttles; the media path stays healthy) — the
    // canonical gray failure, and the one where routing around the device
    // actually pays. The ECC burst is the media-layer counterpart: it
    // slows the flash itself, which the host block path shares, so no
    // routing escape exists and defenses can only shed load.
    let scenarios: Vec<(&'static str, FaultPlan, bool)> = vec![
        ("healthy", FaultPlan::new(), false),
        (
            "slow4x",
            FaultPlan::new().slowdown(0, 4, win_from, win_until),
            true,
        ),
        (
            "slow16x",
            FaultPlan::new().slowdown(0, 16, win_from, win_until),
            true,
        ),
        ("crash", FaultPlan::new().crash_at(0, mid), false),
        (
            "ecc-burst",
            FaultPlan::new().ecc_burst(0, 0..u64::MAX, win_from, win_until),
            false,
        ),
    ];

    let policy = BreakerPolicy {
        enabled: true,
        failure_threshold: 3,
        window: frac(8, 1),
        // Once tripped, stay host-routed for the rest of the incident: a
        // short cooldown would close the breaker onto the still-gray
        // device, and every re-closure costs two more slowed services
        // before the latency rule can re-trip.
        cooldown: frac(64 * 4, 1),
        // A 2x-sustained latency EWMA opens the breaker with zero hard
        // failures -- the gray-failure case rate-based health misses.
        slow_trip_factor: 2,
        // The healthy head of the stream has ~9 device completions before
        // the window opens; calibrate on the first 6.
        baseline_samples: 6,
    };

    let loads = || {
        vec![
            TenantLoad::new(
                TenantSpec::new("interactive").weight(8),
                query.clone(),
                n,
                frac(6, 1),
            )
            .model(ArrivalModel::Uniform),
            TenantLoad::new(
                TenantSpec::new("batch").weight(1),
                query.clone(),
                2 * n,
                frac(3, 1),
            )
            .model(ArrivalModel::Uniform),
        ]
    };

    let mut clean_answer: Option<Vec<i128>> = None;
    let mut points = Vec::new();
    for (scenario, plan, firmware_only) in &scenarios {
        for defense in ["none", "breaker", "full"] {
            let mut sys = lineitem_system(s, |b| {
                let b = b.tweak(|c| c.smart.max_sessions = 1);
                let b = if *firmware_only {
                    let view = plan.for_device(0);
                    b.tweak(move |c| c.smart.fault_plan = view)
                } else {
                    b.fault_plan(plan)
                };
                if defense == "none" {
                    b
                } else {
                    b.breaker(policy)
                }
            });
            let (workload, tenants) = compose(&loads(), s.seed);
            // Global FIFO admission: the front door most deployments run,
            // and the one where a gray device actually takes the victim
            // down with it — WFQ alone already shields the victim's queue
            // slot, which would mask what each chaos defense buys.
            let mut opts = WorkloadOptions::new().fair_queueing(false);
            for t in tenants {
                opts = opts.tenant(t);
            }
            if defense == "full" {
                opts = opts.brownout(BrownoutPolicy { max_waiting: 2 });
            }
            let rep = sys.run_workload(&workload, opts)?;
            let baseline = clean_answer.get_or_insert_with(|| {
                rep.completions
                    .first()
                    .map(|c| c.result.agg_values.clone())
                    .unwrap_or_default()
            });
            let matches_clean = !rep.completions.is_empty()
                && rep
                    .completions
                    .iter()
                    .all(|c| c.result.agg_values == *baseline);
            let tenant = |name: &str| {
                rep.tenants
                    .iter()
                    .find(|t| t.name == name)
                    .cloned()
                    .unwrap_or_default()
            };
            let (victim, batch) = (tenant("interactive"), tenant("batch"));
            points.push(ChaosPoint {
                scenario,
                defense,
                arrivals: workload.len() as u64,
                completed: rep.completions.len() as u64,
                rejected: rep.rejected,
                goodput_qps: rep.throughput_qps,
                victim_completed: victim.completed,
                victim_p99_ms: victim.latency.p99.as_secs_f64() * 1e3,
                batch_completed: batch.completed,
                batch_rejected: batch.rejected,
                fallbacks: rep.faults.fallbacks,
                slow_trips: rep.faults.slow_trips,
                breaker_transitions: rep.breaker_transitions.len() as u64,
                matches_clean,
                faults: rep.faults,
            });
        }
    }
    Ok(ChaosResult {
        service_time,
        points,
    })
}
