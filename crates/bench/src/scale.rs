//! Scale selection: the paper runs TPC-H at SF 100 (90 GB LINEITEM) and the
//! synthetic join at 120 GB. The emulator runs real bytes, so experiments
//! default to a few tens of megabytes; because all timing models are linear
//! in pages at fixed selectivity, measured ratios are scale-invariant and
//! elapsed times are projected to paper scale by the page-count ratio.

/// Workload scales for one harness invocation.
#[derive(Debug, Clone, Copy)]
pub struct Scales {
    /// TPC-H scale factor (paper: 100).
    pub tpch_sf: f64,
    /// Synthetic64 scale: fraction of the paper's row counts
    /// (R 1 M rows, S 400 M rows at 1.0).
    pub synth_scale: f64,
    /// Generator seed.
    pub seed: u64,
}

impl Default for Scales {
    fn default() -> Self {
        Self {
            tpch_sf: 0.05,
            synth_scale: 0.0005,
            seed: 42,
        }
    }
}

impl Scales {
    /// A smaller preset for smoke tests and Criterion runs.
    pub fn quick() -> Self {
        Self {
            tpch_sf: 0.01,
            synth_scale: 0.0001,
            seed: 42,
        }
    }

    /// Multiplier from this run's TPC-H scale to the paper's SF 100.
    pub fn tpch_projection(&self) -> f64 {
        100.0 / self.tpch_sf
    }

    /// Multiplier from this run's synthetic scale to the paper's full size.
    pub fn synth_projection(&self) -> f64 {
        1.0 / self.synth_scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projections() {
        let s = Scales::default();
        assert!((s.tpch_projection() - 2000.0).abs() < 1e-9);
        assert!((s.synth_projection() - 2000.0).abs() < 1e-9);
    }
}
