//! Criterion benches regenerating the paper's tables and figures.
//!
//! One bench group per artifact. Each iteration runs the corresponding
//! experiment end-to-end on the emulator (generation and table loading
//! happen once, outside the measurement loop, wherever the experiment
//! allows). The interesting *scientific* output — simulated elapsed time
//! and ratios — is printed by `cargo run --bin repro`; these benches track
//! the emulator's own wall-clock cost so regressions in the simulator
//! itself are caught.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smartssd::{DeviceKind, Layout, RunOptions};
use smartssd_bench::{synth_system, tab2, tpch_system, Scales};
use smartssd_workload::{join_query, q14, q6};

fn scales() -> Scales {
    Scales {
        tpch_sf: 0.005,
        synth_scale: 0.0001,
        seed: 42,
    }
}

/// Table 2: raw sequential-read bandwidth measurement.
fn bench_tab2(c: &mut Criterion) {
    c.bench_function("tab2/seq_read_bandwidth", |b| b.iter(tab2));
}

/// Figure 3: TPC-H Q6 on the three configurations.
fn bench_fig3(c: &mut Criterion) {
    let s = scales();
    let mut group = c.benchmark_group("fig3_q6");
    group.sample_size(20);
    let query = q6();
    for (kind, layout, label) in [
        (DeviceKind::Ssd, Layout::Nsm, "ssd_nsm"),
        (DeviceKind::SmartSsd, Layout::Nsm, "smart_nsm"),
        (DeviceKind::SmartSsd, Layout::Pax, "smart_pax"),
    ] {
        let mut sys = tpch_system(kind, layout, &s);
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                sys.clear_cache();
                sys.run(&query, RunOptions::default()).expect("q6")
            })
        });
    }
    group.finish();
}

/// Figure 7: TPC-H Q14 on the three configurations.
fn bench_fig7(c: &mut Criterion) {
    let s = scales();
    let mut group = c.benchmark_group("fig7_q14");
    group.sample_size(20);
    let query = q14();
    for (kind, layout, label) in [
        (DeviceKind::Ssd, Layout::Nsm, "ssd_nsm"),
        (DeviceKind::SmartSsd, Layout::Nsm, "smart_nsm"),
        (DeviceKind::SmartSsd, Layout::Pax, "smart_pax"),
    ] {
        let mut sys = tpch_system(kind, layout, &s);
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                sys.clear_cache();
                sys.run(&query, RunOptions::default()).expect("q14")
            })
        });
    }
    group.finish();
}

/// Figure 5: the join at the sweep's endpoints.
fn bench_fig5(c: &mut Criterion) {
    let s = scales();
    let mut group = c.benchmark_group("fig5_join");
    group.sample_size(20);
    for &sel in &[0.01, 1.0] {
        let query = join_query(sel);
        let mut ssd = synth_system(DeviceKind::Ssd, Layout::Nsm, &s);
        group.bench_function(BenchmarkId::new("ssd", format!("sel{sel}")), |b| {
            b.iter(|| {
                ssd.clear_cache();
                ssd.run(&query, RunOptions::default()).expect("join")
            })
        });
        let mut smart = synth_system(DeviceKind::SmartSsd, Layout::Pax, &s);
        group.bench_function(BenchmarkId::new("smart_pax", format!("sel{sel}")), |b| {
            b.iter(|| {
                smart.clear_cache();
                smart.run(&query, RunOptions::default()).expect("join")
            })
        });
    }
    group.finish();
}

/// Table 3: the energy experiment (HDD bar dominates, so fewer samples).
fn bench_tab3(c: &mut Criterion) {
    let s = scales();
    let mut group = c.benchmark_group("tab3_energy");
    group.sample_size(10);
    let query = q6();
    for (kind, layout, label) in [
        (DeviceKind::Hdd, Layout::Nsm, "hdd"),
        (DeviceKind::Ssd, Layout::Nsm, "ssd"),
        (DeviceKind::SmartSsd, Layout::Pax, "smart_pax"),
    ] {
        let mut sys = tpch_system(kind, layout, &s);
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                sys.clear_cache();
                let r = sys.run(&query, RunOptions::default()).expect("q6");
                r.energy.system_kj()
            })
        });
    }
    group.finish();
}

/// Figure 1 is a data table; benching it tracks the roadmap generator.
fn bench_fig1(c: &mut Criterion) {
    c.bench_function("fig1/roadmap", |b| b.iter(smartssd_bench::fig1));
}

criterion_group!(artifacts, bench_tab2, bench_fig3, bench_fig5, bench_fig7, bench_tab3, bench_fig1);
criterion_main!(artifacts);
