//! Operator-kernel microbenchmarks and layout ablations.
//!
//! These isolate the design choices DESIGN.md calls out: NSM vs PAX decode
//! cost (the paper's central layout result), predicate short-circuiting,
//! and hash-join probe cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use smartssd_exec::spec::{BuildSide, ColRef, JoinOutput, JoinSpec, ScanAggSpec, TableRef};
use smartssd_exec::{
    join::{probe_page, JoinHashTable, JoinSink},
    scan_agg_page, WorkCounts,
};
use smartssd_storage::expr::{AggSpec, CmpOp, Expr, Pred};
use smartssd_storage::{DataType, Datum, Layout, Schema, TableBuilder, TableImage, Tuple};
use std::sync::Arc;

fn lineitem_like(layout: Layout, rows: i32) -> TableImage {
    let schema = smartssd_workload::tpch::lineitem_schema();
    let mut b = TableBuilder::new("l", schema, layout);
    b.extend(smartssd_workload::tpch::lineitem_rows(
        rows as f64 / 6_000_000.0,
        7,
    ));
    b.finish()
}

/// Q6's kernel on NSM vs PAX pages: the layout ablation.
fn bench_scan_agg_layouts(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel/scan_agg_q6");
    let spec = ScanAggSpec {
        pred: Pred::And(vec![
            Pred::range_half_open(10, 731, 1096),
            Pred::between_exclusive(6, 5, 7),
            Pred::Cmp(CmpOp::Lt, Expr::col(4), Expr::lit(24)),
        ]),
        aggs: vec![AggSpec::sum(Expr::col(5).mul(Expr::col(6)))],
    };
    for layout in [Layout::Nsm, Layout::Pax] {
        let img = lineitem_like(layout, 60_000);
        group.throughput(Throughput::Elements(img.num_rows()));
        group.bench_function(BenchmarkId::from_parameter(layout), |b| {
            b.iter(|| {
                let mut states = vec![smartssd_storage::expr::AggState::new(
                    smartssd_storage::expr::AggFunc::Sum,
                )];
                let mut w = WorkCounts::default();
                for p in img.pages() {
                    scan_agg_page(p, img.schema(), &spec, &mut states, &mut w);
                }
                (states[0].finish(), w.pred_atoms)
            })
        });
    }
    group.finish();
}

/// The same Q6 kernel via the tuple-at-a-time reference path: the
/// vectorization speedup is `scan_agg_q6` vs `scan_agg_q6_rowwise`.
fn bench_scan_agg_rowwise(c: &mut Criterion) {
    use smartssd_exec::reference::scan_agg_page_rowwise;
    let mut group = c.benchmark_group("kernel/scan_agg_q6_rowwise");
    let spec = ScanAggSpec {
        pred: Pred::And(vec![
            Pred::range_half_open(10, 731, 1096),
            Pred::between_exclusive(6, 5, 7),
            Pred::Cmp(CmpOp::Lt, Expr::col(4), Expr::lit(24)),
        ]),
        aggs: vec![AggSpec::sum(Expr::col(5).mul(Expr::col(6)))],
    };
    for layout in [Layout::Nsm, Layout::Pax] {
        let img = lineitem_like(layout, 60_000);
        group.throughput(Throughput::Elements(img.num_rows()));
        group.bench_function(BenchmarkId::from_parameter(layout), |b| {
            b.iter(|| {
                let mut states = vec![smartssd_storage::expr::AggState::new(
                    smartssd_storage::expr::AggFunc::Sum,
                )];
                let mut w = WorkCounts::default();
                for p in img.pages() {
                    scan_agg_page_rowwise(p, img.schema(), &spec, &mut states, &mut w);
                }
                (states[0].finish(), w.pred_atoms)
            })
        });
    }
    group.finish();
}

/// Short-circuit ablation: selective leading atom vs non-selective.
fn bench_short_circuit(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel/short_circuit");
    let img = lineitem_like(Layout::Pax, 60_000);
    // Selective first atom (quantity < 2, ~2%) vs always-true first atom.
    for (label, first_lit) in [("selective_first", 2i64), ("nonselective_first", 100)] {
        let spec = ScanAggSpec {
            pred: Pred::And(vec![
                Pred::Cmp(CmpOp::Lt, Expr::col(4), Expr::lit(first_lit)),
                Pred::between_exclusive(6, 5, 7),
                Pred::range_half_open(10, 731, 1096),
            ]),
            aggs: vec![AggSpec::count()],
        };
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut states = vec![smartssd_storage::expr::AggState::new(
                    smartssd_storage::expr::AggFunc::Count,
                )];
                let mut w = WorkCounts::default();
                for p in img.pages() {
                    scan_agg_page(p, img.schema(), &spec, &mut states, &mut w);
                }
                w.pred_atoms
            })
        });
    }
    group.finish();
}

fn synth_tables(layout: Layout) -> (TableImage, TableImage, Arc<Schema>) {
    let schema = Schema::from_pairs(&[
        ("k", DataType::Int32),
        ("payload", DataType::Int64),
        ("sel", DataType::Int32),
    ]);
    let mut build = TableBuilder::new("r", Arc::clone(&schema), layout);
    build.extend((0..2_000i32).map(|k| {
        vec![
            Datum::I32(k),
            Datum::I64(k as i64 * 10),
            Datum::I32(k % 100),
        ] as Tuple
    }));
    let mut probe = TableBuilder::new("s", Arc::clone(&schema), layout);
    probe.extend((0..60_000i32).map(|k| {
        vec![
            Datum::I32(k % 4_000), // half the keys miss
            Datum::I64(k as i64),
            Datum::I32(k % 100),
        ] as Tuple
    }));
    (build.finish(), probe.finish(), schema)
}

/// Hash probe kernel: filter-before-probe vs probe-before-filter (the
/// Figure 4 vs Figure 6 plan shapes).
fn bench_probe_order(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel/probe_order");
    let (build, probe, _schema) = synth_tables(Layout::Pax);
    for (label, filter_first) in [("filter_first", true), ("probe_first", false)] {
        let spec = JoinSpec {
            build: BuildSide {
                table: TableRef {
                    first_lba: 0,
                    num_pages: build.num_pages() as u64,
                    schema: build.schema().clone(),
                    layout: build.layout(),
                },
                key_col: 0,
                payload: vec![1],
            },
            probe_key: 0,
            probe_pred: Pred::Cmp(CmpOp::Lt, Expr::col(2), Expr::lit(10)),
            filter_first,
            output: JoinOutput::Project(vec![ColRef::Probe(1), ColRef::Build(0)]),
        };
        let mut w = WorkCounts::default();
        let ht = JoinHashTable::build(build.pages(), &spec.build, &mut w);
        let joined = spec.joined_schema(probe.schema());
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut sink = JoinSink::new(&spec);
                let mut w = WorkCounts::default();
                for p in probe.pages() {
                    probe_page(p, probe.schema(), &spec, &ht, &joined, &mut sink, &mut w);
                }
                (sink.rows.len(), w.hash_probes)
            })
        });
    }
    group.finish();
}

/// Page codec throughput: building NSM vs PAX pages.
fn bench_page_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel/page_build");
    let rows: Vec<Tuple> = smartssd_workload::tpch::lineitem_rows(0.002, 3).collect();
    let schema = smartssd_workload::tpch::lineitem_schema();
    for layout in [Layout::Nsm, Layout::Pax] {
        group.throughput(Throughput::Elements(rows.len() as u64));
        group.bench_function(BenchmarkId::from_parameter(layout), |b| {
            b.iter(|| {
                let mut t = TableBuilder::new("t", Arc::clone(&schema), layout);
                t.extend(rows.iter().cloned());
                t.finish().num_pages()
            })
        });
    }
    group.finish();
}

/// TPC-H Q1's grouped-aggregation kernel on NSM vs PAX pages.
fn bench_group_agg_layouts(c: &mut Criterion) {
    use smartssd_exec::spec::GroupAggSpec;
    use smartssd_exec::{scan_group_agg_page, GroupTable};
    let mut group = c.benchmark_group("kernel/group_agg_q1");
    let spec = GroupAggSpec {
        pred: Pred::Cmp(CmpOp::Le, Expr::col(10), Expr::lit(2_437)),
        group_by: vec![8, 9], // returnflag, linestatus
        aggs: vec![
            AggSpec::sum(Expr::col(4)),
            AggSpec::sum(Expr::col(5)),
            AggSpec::sum(Expr::col(5).mul(Expr::lit(100).sub(Expr::col(6)))),
            AggSpec::count(),
        ],
    };
    for layout in [Layout::Nsm, Layout::Pax] {
        let img = lineitem_like(layout, 60_000);
        group.throughput(Throughput::Elements(img.num_rows()));
        group.bench_function(BenchmarkId::from_parameter(layout), |b| {
            b.iter(|| {
                let mut acc = GroupTable::new();
                let mut w = WorkCounts::default();
                for p in img.pages() {
                    scan_group_agg_page(p, img.schema(), &spec, &mut acc, &mut w);
                }
                (acc.len(), w.agg_updates)
            })
        });
    }
    group.finish();
}

/// Q1's grouped aggregation via the tuple-at-a-time reference path
/// (`BTreeMap` accumulator, per-row tree walks).
fn bench_group_agg_rowwise(c: &mut Criterion) {
    use smartssd_exec::reference::{scan_group_agg_page_rowwise, RefGroupTable};
    use smartssd_exec::spec::GroupAggSpec;
    let mut group = c.benchmark_group("kernel/group_agg_q1_rowwise");
    let spec = GroupAggSpec {
        pred: Pred::Cmp(CmpOp::Le, Expr::col(10), Expr::lit(2_437)),
        group_by: vec![8, 9],
        aggs: vec![
            AggSpec::sum(Expr::col(4)),
            AggSpec::sum(Expr::col(5)),
            AggSpec::sum(Expr::col(5).mul(Expr::lit(100).sub(Expr::col(6)))),
            AggSpec::count(),
        ],
    };
    for layout in [Layout::Nsm, Layout::Pax] {
        let img = lineitem_like(layout, 60_000);
        group.throughput(Throughput::Elements(img.num_rows()));
        group.bench_function(BenchmarkId::from_parameter(layout), |b| {
            b.iter(|| {
                let mut acc = RefGroupTable::new();
                let mut w = WorkCounts::default();
                for p in img.pages() {
                    scan_group_agg_page_rowwise(p, img.schema(), &spec, &mut acc, &mut w);
                }
                (acc.len(), w.agg_updates)
            })
        });
    }
    group.finish();
}

/// Wire codec round trip for a realistic operator.
fn bench_wire_codec(c: &mut Criterion) {
    let mut catalog = smartssd_query::Catalog::new();
    catalog.register(
        "lineitem",
        smartssd_exec::TableRef {
            first_lba: 0,
            num_pages: 10_000,
            schema: smartssd_workload::tpch::lineitem_schema(),
            layout: Layout::Pax,
        },
    );
    catalog.register(
        "part",
        smartssd_exec::TableRef {
            first_lba: 10_000,
            num_pages: 500,
            schema: smartssd_workload::tpch::part_schema(),
            layout: Layout::Pax,
        },
    );
    let op = smartssd_workload::q14().resolve(&catalog).unwrap();
    let bytes = smartssd_exec::encode_op(&op);
    c.bench_function("wire/encode_q14", |b| {
        b.iter(|| smartssd_exec::encode_op(&op))
    });
    c.bench_function("wire/decode_q14", |b| {
        b.iter(|| smartssd_exec::decode_op(&bytes).unwrap())
    });
}

criterion_group!(
    kernels,
    bench_scan_agg_layouts,
    bench_scan_agg_rowwise,
    bench_short_circuit,
    bench_probe_order,
    bench_page_build,
    bench_group_agg_layouts,
    bench_group_agg_rowwise,
    bench_wire_codec
);
criterion_main!(kernels);
