//! Serving-scale benchmarks: the `servescale/*` group tracks the
//! multi-tenant admission hot path — the keyed-min-heap wait set, the
//! generational pending slab, cancellation events, and the streaming
//! arrival merge — under tenant counts the old linear scan could not
//! sustain.
//!
//! Simulated figures are deterministic; only wall-clock time varies. The
//! stream sizes are kept small enough for Criterion's iteration counts —
//! the full 10^5/10^6 sweep (including the linear-scan reference cells)
//! lives in `repro servescale` (BENCH_servescale.json).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use smartssd::{InterfaceMode, SimTime, WorkloadOptions};
use smartssd_bench::{servescale_loads, servescale_system};

/// Q6 device service time on the servescale table, priced once: load
/// sizing must not depend on Criterion's warmup state.
fn service_time() -> SimTime {
    use smartssd_query::Route;
    let mut probe = servescale_system(42);
    probe
        .run(
            &smartssd_workload::q6(),
            smartssd::RunOptions::routed(Route::Device),
        )
        .expect("probe run")
        .result
        .elapsed
}

/// End-to-end streaming serving at a few tenant counts, fixed total
/// arrivals: what grows is the wait set the admission heap manages, so
/// the per-element cost should stay near-flat (O(log tenants)). Each
/// iteration rebuilds the system (replays must start cold to stay
/// deterministic).
fn bench_run_serving(c: &mut Criterion) {
    let service = service_time();
    let n = 10_000usize;
    let mut group = c.benchmark_group("servescale/run_serving");
    group.sample_size(10);
    for &tenants in &[16usize, 256, 4_096] {
        let loads = servescale_loads(tenants, n, service);
        let total: usize = loads.iter().map(|l| l.count()).sum();
        group.throughput(Throughput::Elements(total as u64));
        group.bench_function(BenchmarkId::from_parameter(tenants), |b| {
            b.iter(|| {
                let mut sys = servescale_system(42);
                let opts = WorkloadOptions::new().interface(InterfaceMode::Direct);
                sys.run_serving(&loads, 42, opts).expect("clean replay")
            });
        });
    }
    group.finish();
}

criterion_group!(servescale, bench_run_serving);
criterion_main!(servescale);
