//! Flash-emulator microbenchmarks: read/write paths and garbage collection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use smartssd_flash::{FlashConfig, FlashSsd};
use smartssd_sim::SimTime;

fn page(cfg: &FlashConfig, tag: u64) -> bytes::Bytes {
    let mut v = vec![0u8; cfg.page_size];
    v[..8].copy_from_slice(&tag.to_le_bytes());
    bytes::Bytes::from(v)
}

/// Sequential read through the full FTL + timing path.
fn bench_seq_read(c: &mut Criterion) {
    let cfg = FlashConfig::default();
    let n: u64 = 4096;
    let mut ssd = FlashSsd::new(cfg.clone());
    for lba in 0..n {
        ssd.write(lba, page(&cfg, lba), SimTime::ZERO).unwrap();
    }
    let mut group = c.benchmark_group("flash/seq_read");
    group.throughput(Throughput::Bytes(n * cfg.page_size as u64));
    group.bench_function("4096_pages", |b| {
        b.iter(|| {
            ssd.reset_timing();
            let mut done = SimTime::ZERO;
            for lba in 0..n {
                done = done.max(ssd.read(lba, SimTime::ZERO).unwrap().1.end);
            }
            done
        })
    });
    group.finish();
}

/// Random overwrites on a small, nearly-full device: the GC stress path.
fn bench_gc_overwrites(c: &mut Criterion) {
    let mut group = c.benchmark_group("flash/gc_overwrite");
    group.sample_size(20);
    // Tight overprovisioning stresses GC harder; the tiny 8-block-per-die
    // test geometry needs at least ~0.2 spare to never wedge.
    for op in [0.2f64, 0.4] {
        group.bench_function(BenchmarkId::new("overprovision", format!("{op}")), |b| {
            b.iter(|| {
                let cfg = FlashConfig {
                    overprovision: op,
                    ..FlashConfig::tiny()
                };
                let mut ssd = FlashSsd::new(cfg.clone());
                let logical = ssd.logical_pages();
                // Fill, then overwrite randomly (xorshift stream).
                for lba in 0..logical {
                    ssd.write(lba, page(&cfg, lba), SimTime::ZERO).unwrap();
                }
                let mut x = 0x12345678u64;
                for i in 0..2 * logical {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    ssd.write(x % logical, page(&cfg, i), SimTime::ZERO)
                        .unwrap();
                }
                ssd.stats().write_amplification()
            })
        });
    }
    group.finish();
}

/// Program (write) throughput through striping.
fn bench_seq_write(c: &mut Criterion) {
    let cfg = FlashConfig::default();
    let n: u64 = 2048;
    let mut group = c.benchmark_group("flash/seq_write");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(n * cfg.page_size as u64));
    group.bench_function("2048_pages", |b| {
        b.iter(|| {
            let mut ssd = FlashSsd::new(cfg.clone());
            for lba in 0..n {
                ssd.write(lba, page(&cfg, lba), SimTime::ZERO).unwrap();
            }
            ssd.stats().writes
        })
    });
    group.finish();
}

criterion_group!(flash, bench_seq_read, bench_gc_overwrites, bench_seq_write);
criterion_main!(flash);
