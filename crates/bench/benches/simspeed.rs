//! Simulator-throughput benchmarks: the `simspeed/*` group tracks how fast
//! the hot path (arrival cursor, batched flash charges, Arc-shared queries,
//! allocation-free report assembly) chews through an open Q6 arrival stream.
//!
//! Simulated figures are deterministic; only wall-clock time varies. The
//! stream sizes are kept small enough for Criterion's iteration counts —
//! the full 10^5/10^6 sweep lives in `repro simspeed` (BENCH_simspeed.json).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use smartssd::{InterfaceMode, WorkloadOptions};
use smartssd_bench::{simspeed_system, simspeed_workload};

/// End-to-end workload replay at a few stream sizes: the scheduler +
/// timeline + session-protocol hot path. Each iteration rebuilds the
/// system (replays must start cold to stay deterministic), so the absolute
/// numbers include the small fixed build cost; it is identical across
/// sizes and washes out at the larger ones.
fn bench_run_workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("simspeed/run_workload");
    for &n in &[100usize, 1_000, 10_000] {
        let workload = simspeed_workload(n, 42);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| {
                let mut sys = simspeed_system(42);
                let opts = WorkloadOptions::new().interface(InterfaceMode::Direct);
                sys.run_workload(&workload, opts).expect("clean replay")
            });
        });
    }
    group.finish();
}

/// Workload construction alone: arrival generation plus the Arc-shared
/// query stream (one `Query` allocation regardless of `n`).
fn bench_workload_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("simspeed/workload_build");
    for &n in &[1_000usize, 100_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| simspeed_workload(n, 42));
        });
    }
    group.finish();
}

criterion_group!(simspeed, bench_run_workload, bench_workload_build);
criterion_main!(simspeed);
