//! Acceptance shape of the graceful-degradation experiment: throughput
//! must fall smoothly (no cliff) as the crash rate rises with the breaker
//! on, the breaker must strictly beat breaker-off at the highest swept
//! rate, and answers must stay bit-identical in every cell.

use smartssd_bench::{degrade_exp, Scales};

#[test]
fn degradation_is_smooth_with_the_breaker_and_worse_without() {
    let points = degrade_exp(&Scales::quick()).expect("degrade experiment");
    let on: Vec<_> = points.iter().filter(|p| p.breaker).collect();
    let off: Vec<_> = points.iter().filter(|p| !p.breaker).collect();
    assert_eq!(on.len(), off.len());
    assert!(on.len() >= 3, "sweep needs enough rates to show a shape");

    // Monotone degradation with the breaker: each swept rate's throughput
    // is no better than the previous (cleaner) one, and never collapses
    // to zero — the host keeps serving.
    for w in on.windows(2) {
        assert!(
            w[1].throughput_qps <= w[0].throughput_qps + f64::EPSILON,
            "breaker-on throughput must degrade monotonically: {} ({}) -> {} ({})",
            w[0].throughput_qps,
            w[0].label,
            w[1].throughput_qps,
            w[1].label
        );
    }
    assert!(on.last().unwrap().throughput_qps > 0.0);

    // At the highest swept crash rate, routing around the sick device
    // strictly beats hammering it.
    let (last_on, last_off) = (on.last().unwrap(), off.last().unwrap());
    assert_eq!(last_on.label, last_off.label);
    assert!(
        last_on.makespan_secs < last_off.makespan_secs,
        "breaker off must be strictly worse at the highest rate: on {} vs off {}",
        last_on.makespan_secs,
        last_off.makespan_secs
    );
    assert!(last_on.fallbacks < last_off.fallbacks);
    assert!(last_on.breaker_transitions > 0);

    // Robustness changes timing and routing, never answers, and every
    // arrival is accounted for.
    for p in &points {
        assert!(
            p.matches_clean,
            "{} (breaker {}) diverged",
            p.label, p.breaker
        );
        assert_eq!(p.completed + p.rejected + p.deadline_missed, 16);
    }
    // The clean cells shed nothing and never trip the breaker.
    for p in points.iter().filter(|p| p.crash_rate == 0) {
        assert_eq!(p.completed, 16);
        assert_eq!(p.breaker_transitions, 0);
        assert_eq!(p.fallbacks, 0);
    }
}
