//! Serving-scale floor: `repro servescale --quick --smoke` must complete
//! its tiny heap/scan pair correctly and keep the heap engine above a
//! conservative arrivals-per-second floor.
//!
//! The floor is deliberately loose — the test binary under `cargo test`
//! runs the spawned `repro` in the same (usually debug) profile, and CI
//! runners are shared machines — so it only catches catastrophic
//! admission-path regressions (a linear scan sneaking back onto the hot
//! path, per-arrival deep clones), not ordinary noise. The release-profile
//! sweep that tracks the real targets is `repro servescale --quick` in
//! `scripts/check.sh`.

use std::process::Command;

/// Pulls every occurrence of `"key": value` out of the JSON report, in
/// order — the servescale report has one point per sweep cell.
fn fields(json: &str, key: &str) -> Vec<f64> {
    let pat = format!("\"{key}\": ");
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(at) = rest.find(&pat) {
        rest = &rest[at + pat.len()..];
        let end = rest
            .find(|c: char| c != '-' && c != '.' && c != 'e' && !c.is_ascii_digit())
            .unwrap_or(rest.len());
        out.push(rest[..end].parse().unwrap_or_else(|e| panic!("{key}: {e}")));
    }
    assert!(!out.is_empty(), "missing {key}");
    out
}

#[test]
fn servescale_smoke_completes_both_engines_above_the_floor() {
    let dir = std::env::temp_dir().join(format!("servescale_floor_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["servescale", "--quick", "--smoke"])
        .current_dir(&dir)
        .output()
        .expect("run repro binary");
    assert!(
        out.status.success(),
        "repro exited with {:?}: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(dir.join("BENCH_servescale.json"))
        .expect("servescale writes BENCH_servescale.json");
    let _ = std::fs::remove_dir_all(&dir);

    // Smoke sweeps exactly one heap cell and one scan cell of the same
    // load; both engines must agree on every simulated figure (the heap
    // is grant-for-grant equivalent to the scan reference), and only
    // wall-clock may differ.
    assert!(json.contains("\"engine\": \"heap\""), "heap cell present");
    assert!(json.contains("\"engine\": \"scan\""), "scan cell present");
    for key in ["arrivals", "completed", "canceled", "sim_secs"] {
        let vals = fields(&json, key);
        assert_eq!(vals.len(), 2, "one {key} per engine");
        assert_eq!(
            vals[0], vals[1],
            "{key}: heap and scan must agree exactly (heap={}, scan={})",
            vals[0], vals[1]
        );
    }
    let arrivals = fields(&json, "arrivals")[0];
    let completed = fields(&json, "completed")[0];
    let canceled = fields(&json, "canceled")[0];
    assert_eq!(arrivals, 2_000.0, "smoke sweeps exactly the 2k point");
    assert_eq!(
        completed + canceled,
        arrivals,
        "every arrival completes or is shed by its cancel instant"
    );
    assert!(
        canceled > 0.0,
        "the over-offered smoke load must shed some laggards (canceled=0 \
         means cancellation events are not firing)"
    );
    let heap_rate = fields(&json, "arrivals_per_sec")[0];
    assert!(
        heap_rate >= 500.0,
        "throughput floor: {heap_rate:.0} arrivals/s < 500 — admission-path regression?"
    );
}
