//! Simulator-throughput floor: `repro simspeed --quick --smoke` must
//! complete its smallest sweep point correctly and above a conservative
//! arrivals-per-second floor.
//!
//! The floor is deliberately loose — the test binary under `cargo test`
//! runs the spawned `repro` in the same (usually debug) profile, and CI
//! runners are shared machines — so it only catches catastrophic hot-path
//! regressions (an accidental O(n^2) loop, per-arrival deep clones), not
//! ordinary noise. The release-profile sweep that tracks the real targets
//! is `repro simspeed --quick` in `scripts/check.sh`.

use std::process::Command;

/// Pulls `"key": value` out of the (single-point) JSON report.
fn field(json: &str, key: &str) -> f64 {
    let pat = format!("\"{key}\": ");
    let at = json.find(&pat).unwrap_or_else(|| panic!("missing {key}"));
    let rest = &json[at + pat.len()..];
    let end = rest
        .find(|c: char| c != '-' && c != '.' && c != 'e' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().unwrap_or_else(|e| panic!("{key}: {e}"))
}

#[test]
fn simspeed_smoke_completes_everything_above_the_floor() {
    let dir = std::env::temp_dir().join(format!("simspeed_floor_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["simspeed", "--quick", "--smoke"])
        .current_dir(&dir)
        .output()
        .expect("run repro binary");
    assert!(
        out.status.success(),
        "repro exited with {:?}: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(dir.join("BENCH_simspeed.json"))
        .expect("simspeed writes BENCH_simspeed.json");
    let _ = std::fs::remove_dir_all(&dir);

    let arrivals = field(&json, "arrivals");
    let completed = field(&json, "completed");
    let rate = field(&json, "arrivals_per_sec");
    let sim_secs = field(&json, "sim_secs");
    assert_eq!(arrivals, 10_000.0, "smoke sweeps exactly the 10^4 point");
    assert_eq!(completed, arrivals, "every arrival must complete cleanly");
    assert!(
        rate >= 500.0,
        "throughput floor: {rate:.0} arrivals/s < 500 — hot-path regression?"
    );
    assert!(
        sim_secs > 0.0,
        "simulated makespan must advance (got {sim_secs})"
    );
}
