//! Acceptance shape of the multi-tenant serving experiment — the PR's
//! headline claims, pinned at quick scale:
//!
//! * The open-system load sweep shows the knee: past saturation the
//!   completed throughput stops tracking the offered load while p99
//!   keeps climbing.
//! * Isolation: with weighted fair queueing on, every victim tenant's
//!   p99 stays within 2x of its aggressor-free baseline; with global
//!   FIFO admission the same flood pushes every victim past 2x.

use smartssd_bench::{serving_exp, Scales};

const KNEE_ARRIVALS: usize = 16;
const VICTIM_ARRIVALS: usize = 12;

#[test]
fn load_sweep_shows_the_utilization_knee() {
    let r =
        serving_exp(&Scales::quick(), KNEE_ARRIVALS, VICTIM_ARRIVALS).expect("serving experiment");
    assert!(
        r.knee.len() >= 4,
        "sweep needs enough points to show a shape"
    );
    let low = r.knee.first().unwrap();
    let high = r.knee.last().unwrap();
    assert!(
        low.rho < 0.5 && high.rho > 1.0,
        "sweep must straddle saturation"
    );

    // Below the knee the server keeps up with the offered load; past it
    // the completed throughput falls measurably short.
    assert!(
        low.throughput_qps > 0.9 * low.offered_qps,
        "at rho {} throughput {} should track offered {}",
        low.rho,
        low.throughput_qps,
        low.offered_qps
    );
    assert!(
        high.throughput_qps < 0.8 * high.offered_qps,
        "at rho {} throughput {} must saturate below offered {}",
        high.rho,
        high.throughput_qps,
        high.offered_qps
    );

    // And the latency tail blows out across the knee.
    assert!(
        high.p99_ms > 3.0 * low.p99_ms,
        "p99 must climb across the knee: {} -> {}",
        low.p99_ms,
        high.p99_ms
    );
}

#[test]
fn wfq_isolates_victims_from_an_aggressor_and_fifo_does_not() {
    let r =
        serving_exp(&Scales::quick(), KNEE_ARRIVALS, VICTIM_ARRIVALS).expect("serving experiment");
    for victim in ["interactive", "reporting"] {
        let base = r.isolation_p99_ms("baseline", victim);
        let wfq = r.isolation_p99_ms("aggressor+wfq", victim);
        let fifo = r.isolation_p99_ms("aggressor+fifo", victim);
        assert!(base > 0.0, "{victim} baseline must have completions");
        assert!(
            wfq <= 2.0 * base,
            "{victim}: WFQ must hold p99 within 2x of baseline ({wfq} vs {base})"
        );
        assert!(
            fifo > 2.0 * base,
            "{victim}: FIFO must fail the 2x isolation bound ({fifo} vs {base})"
        );
    }

    // The aggressor pays for its own flood: its overload is shed at its
    // admission bound, not spread over the victims.
    let shed: u64 = r
        .isolation
        .iter()
        .filter(|p| p.tenant == "aggressor")
        .map(|p| p.rejected)
        .sum();
    assert!(
        shed > 0,
        "the flood must exceed the aggressor's queue bound"
    );
}
