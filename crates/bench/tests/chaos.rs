//! Acceptance shape of the gray-failure chaos matrix: in the slowdown
//! scenarios each defense layer must strictly pay at the victim's tail
//! (`full < breaker < none`), the healthy cells must shed nothing, the
//! victim tenant must never be browned out, and every completed answer
//! must stay bit-identical in every cell.

use smartssd_bench::{chaos_exp, Scales};

#[test]
fn each_defense_layer_strictly_pays_at_the_victim_tail() {
    let r = chaos_exp(&Scales::quick(), 16).expect("chaos experiment");
    assert_eq!(r.points.len(), 5 * 3, "five scenarios x three defenses");

    // The acceptance claim: latency-aware breaking routes around the gray
    // firmware, and brownout shedding then keeps the victim from queueing
    // behind batch work — each layer strictly improves the victim's p99.
    for scenario in ["slow4x", "slow16x"] {
        let none = r.victim_p99_ms(scenario, "none");
        let breaker = r.victim_p99_ms(scenario, "breaker");
        let full = r.victim_p99_ms(scenario, "full");
        assert!(
            full < breaker && breaker < none,
            "{scenario}: expected full < breaker < none, got {full} / {breaker} / {none}"
        );
        // The win is detection, not a rounding artifact: routing around
        // the gray device cuts the unprotected tail by over 2x.
        assert!(none > 2.0 * breaker, "{scenario}: breaker win too small");
    }

    // ECC bursts slow the shared media, but the host block path is
    // interface-bound, so routing still escapes most of the damage.
    assert!(r.victim_p99_ms("ecc-burst", "breaker") < r.victim_p99_ms("ecc-burst", "none"));

    for p in &r.points {
        // Defenses change routing and shedding, never answers.
        assert!(p.matches_clean, "{}/{} diverged", p.scenario, p.defense);
        // Every arrival is accounted for, and the protected tenant is
        // never the one shed: brownout only drops batch work.
        assert_eq!(p.completed + p.rejected, p.arrivals);
        assert_eq!(p.victim_completed, 16, "{}/{}", p.scenario, p.defense);
        assert_eq!(p.rejected, p.batch_rejected);
        if p.scenario == "healthy" {
            // A healthy system sheds nothing and never trips.
            assert_eq!(p.rejected, 0);
            assert_eq!(p.slow_trips, 0);
            assert_eq!(p.breaker_transitions, 0);
        }
        if p.scenario.starts_with("slow") && p.defense != "none" {
            // The gray window is latency-only — the breaker can only have
            // tripped on the slow-trip rule, and must have.
            assert!(p.slow_trips >= 1, "{}/{}", p.scenario, p.defense);
            assert_eq!(p.breaker_transitions, 1);
        }
        if p.scenario == "crash" {
            // A hard crash is recovery, not brownout territory.
            assert_eq!(p.rejected, 0);
            assert!(p.fallbacks >= 1);
        }
    }
}
