//! Golden test: `repro --quick all` must stay bit-identical.
//!
//! The reproduction binary runs with the default no-op tracer, so the entire
//! observability layer must not shift a single simulated nanosecond. The
//! golden file is the seed output; regenerate it only for an intentional
//! model change (`cargo run --bin repro -- --quick all > golden_...txt`)
//! and say so in the commit message.

use std::process::Command;

#[test]
fn repro_quick_all_is_bit_identical_to_golden() {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--quick", "all"])
        .output()
        .expect("run repro binary");
    assert!(
        out.status.success(),
        "repro exited with {:?}: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let got = String::from_utf8(out.stdout).expect("repro output is UTF-8");
    let want = include_str!("golden_repro_quick_all.txt");
    if got != want {
        // Pinpoint the first diverging line to make regressions readable.
        for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
            assert_eq!(g, w, "first divergence at line {}", i + 1);
        }
        assert_eq!(
            got.lines().count(),
            want.lines().count(),
            "line count differs"
        );
        panic!("output differs from golden (whitespace-only change?)");
    }
}
