#![warn(missing_docs)]

//! NAND flash SSD emulator.
//!
//! This crate is the substrate that stands in for the paper's Samsung SSD
//! hardware (Section 2 describes the architecture we model):
//!
//! * a **NAND array** ([`nand`]) organized as channels x chips x blocks x
//!   pages, with erase-before-program and sequential-program-within-block
//!   rules enforced, plus per-block wear counters;
//! * a **flash controller** timing model ([`timing`]) with chip-level and
//!   channel-level interleaving, an ECC pass per page read, and - crucially -
//!   a single shared **DRAM bus** on which all channel DMA transfers are
//!   serialized. The paper calls this out as the reason its Smart SSD
//!   realizes only 2.8x internal bandwidth (1,560 MB/s vs 550 MB/s external)
//!   rather than the ~10x aggregate NAND bandwidth;
//! * a page-mapped **FTL** ([`ftl`]) with round-robin write striping across
//!   channels/chips (which is what gives sequential reads their channel
//!   parallelism), greedy garbage collection, and wear-aware free-block
//!   allocation;
//! * the assembled device ([`ssd::FlashSsd`]): a logical-block read/write
//!   interface that moves real bytes and charges simulated time.
//!
//! The emulator is *functional*: pages hold actual data, reads return the
//! bytes most recently written. Timing and data move together so that query
//! results and query timings come from a single execution.

pub mod config;
pub mod ftl;
pub mod nand;
pub mod ssd;
pub mod timing;

pub use config::FlashConfig;
pub use ssd::{FlashError, FlashSsd, FlashStats};
