//! Flash controller timing: chip/channel interleaving and the serialized
//! DRAM bus.
//!
//! Models the data path of paper Section 2: NAND cell -> per-die register
//! (tR, occupies the die) -> channel bus transfer (+ ECC decode in the
//! per-channel engine) -> DMA onto the controller's DRAM over the single
//! shared DRAM bus. Chip-level interleaving (multiple dies per channel hide
//! tR) and channel-level interleaving (channels run in parallel) both fall
//! out of the per-resource timelines; the shared DRAM bus is the final
//! serialization point and caps achievable internal bandwidth — the reason
//! Table 2 reports 1,560 MB/s instead of the NAND aggregate.

use crate::config::FlashConfig;
use smartssd_sim::trace::pid;
use smartssd_sim::{Bus, Interval, SimTime, Timeline, TraceLevel, Tracer};

/// Timelines for every timing-relevant controller resource.
pub struct FlashTiming {
    cfg: FlashConfig,
    /// One timeline per die, channel-major.
    chips: Vec<Timeline>,
    /// One timeline per channel bus.
    channels: Vec<Timeline>,
    /// The single shared DRAM DMA bus.
    dram: Bus,
    tracer: Tracer,
    /// Scratch for [`Self::read_pages`] (per-chip page counts, batch
    /// handles, and assignment cursors), held across calls so the batched
    /// path allocates nothing per run.
    scratch: BatchScratch,
}

#[derive(Default)]
struct BatchScratch {
    per_chip_count: Vec<u64>,
    batches: Vec<Option<smartssd_sim::BatchIntervals>>,
    taken: Vec<u64>,
}

impl FlashTiming {
    /// Creates idle timelines for the geometry.
    pub fn new(cfg: &FlashConfig) -> Self {
        Self {
            cfg: cfg.clone(),
            chips: vec![Timeline::new(); cfg.channels * cfg.chips_per_channel],
            channels: vec![Timeline::new(); cfg.channels],
            dram: Bus::new("flash-dram", cfg.dram_bw, cfg.dram_latency_ns),
            tracer: Tracer::none(),
            scratch: BatchScratch::default(),
        }
    }

    /// Replaces the scripted fault plan. The timing model holds its own
    /// config copy, so [`crate::FlashSsd::arm_fault_plan`] threads the
    /// plan through here too.
    pub(crate) fn arm_fault_plan(&mut self, plan: smartssd_sim::DeviceFaultPlan) {
        self.cfg.fault_plan = plan;
    }

    /// Attaches a tracer: channel occupancy is emitted per page transfer
    /// (tid `1 + channel` under the flash pid) and the shared DRAM bus
    /// emits its transfers on tid 0.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.dram.set_tracer(tracer.clone(), pid::FLASH, 0);
        self.tracer = tracer;
    }

    #[inline]
    fn chip_idx(&self, channel: u16, chip: u16) -> usize {
        channel as usize * self.cfg.chips_per_channel + chip as usize
    }

    /// Service time of the register->controller transfer plus ECC decode.
    fn channel_service_ns(&self) -> u64 {
        smartssd_sim::time::transfer_ns(self.cfg.page_size as u64, self.cfg.channel_bw)
            + self.cfg.ecc_ns
    }

    /// Charges one page read: die tR, channel transfer + ECC, DMA to DRAM.
    /// Returns the interval from issue to the page landing in device DRAM.
    ///
    /// A scripted [`smartssd_sim::FaultEvent::Slowdown`] window covering
    /// `now` scales all three occupancies by its factor (the DRAM share as
    /// extra per-request setup, so `bytes_moved` stays honest): a gray
    /// device loses time, not data.
    pub fn read_page(&mut self, channel: u16, chip: u16, now: SimTime) -> Interval {
        let ci = self.chip_idx(channel, chip);
        let factor = self.cfg.fault_plan.slowdown_factor(now) as u64;
        let svc = self.channel_service_ns() * factor;
        let cell = self.chips[ci].occupy(now, self.cfg.t_read_ns * factor);
        let xfer = self.channels[channel as usize].occupy(cell.end, svc);
        self.tracer.span(
            TraceLevel::Full,
            pid::FLASH,
            1 + channel as u32,
            "read",
            "flash-chan",
            xfer,
            &[("bytes", self.cfg.page_size as f64)],
        );
        let dma = if factor > 1 {
            let extra = (factor - 1)
                * smartssd_sim::time::transfer_ns(self.cfg.page_size as u64, self.cfg.dram_bw);
            self.dram
                .transfer_with_setup(xfer.end, self.cfg.page_size as u64, extra)
        } else {
            self.dram.transfer(xfer.end, self.cfg.page_size as u64)
        };
        Interval {
            start: cell.start,
            end: dma.end,
        }
    }

    /// True when no tracer wants per-transfer spans, so a batched charge
    /// (which would emit spans in a different interleaving) is
    /// indistinguishable from the page-at-a-time path.
    pub fn tracer_quiet(&self) -> bool {
        !self.tracer.active(TraceLevel::Full)
    }

    /// Charges a batch of page reads issued at the same instant, one per
    /// `(channel, chip)` coordinate, in coordinate order. Returns each
    /// page's issue-to-DRAM interval — bit-identical to calling
    /// [`Self::read_page`] in a loop.
    ///
    /// Equivalence: the per-page loop interleaves occupies on chip,
    /// channel, and DRAM timelines, but each timeline's state depends only
    /// on the sequence of `(earliest, service)` requests *it* receives, and
    /// those sequences are unchanged by regrouping across distinct
    /// timelines. So the charge runs in three stages — every chip first
    /// (per-chip runs are homogeneous `(now, t_read)` batches, posted with
    /// [`Timeline::occupy_batch`]), then every channel in page order (each
    /// page's transfer starts no earlier than its cell read's end), then
    /// the shared DRAM bus in page order — and produces the same intervals
    /// and the same final timeline states as the loop.
    ///
    /// The caller must check [`Self::tracer_quiet`] first: this path emits
    /// no per-transfer spans.
    pub fn read_pages(&mut self, coords: &[(u16, u16)], now: SimTime) -> Vec<Interval> {
        debug_assert!(self.tracer_quiet(), "batched reads skip trace spans");
        debug_assert!(
            !self.cfg.fault_plan.perturbs_reads(),
            "batched reads bypass scripted slowdowns/bursts; gate on can_batch_reads"
        );
        let svc = self.channel_service_ns();
        // Stage 1: cell reads. Group each chip's pages (they keep their
        // relative order) into one homogeneous occupy_batch.
        let n_chips = self.chips.len();
        self.scratch.per_chip_count.clear();
        self.scratch.per_chip_count.resize(n_chips, 0);
        self.scratch.batches.clear();
        self.scratch.batches.resize(n_chips, None);
        self.scratch.taken.clear();
        self.scratch.taken.resize(n_chips, 0);
        for &(ch, chip) in coords {
            let ci = self.chip_idx(ch, chip);
            self.scratch.per_chip_count[ci] += 1;
        }
        for ci in 0..n_chips {
            let count = self.scratch.per_chip_count[ci];
            if count > 0 {
                self.scratch.batches[ci] =
                    Some(self.chips[ci].occupy_batch(now, self.cfg.t_read_ns, count));
            }
        }
        let mut out = Vec::with_capacity(coords.len());
        for &(ch, chip) in coords {
            let ci = self.chip_idx(ch, chip);
            let k = self.scratch.taken[ci];
            self.scratch.taken[ci] += 1;
            let cell = self.scratch.batches[ci].expect("chip has a batch").get(k);
            out.push(Interval {
                start: cell.start,
                end: cell.end,
            });
        }
        // Stage 2: channel transfers in page order, each gated on its cell
        // read's completion.
        for (iv, &(ch, _)) in out.iter_mut().zip(coords) {
            let xfer = self.channels[ch as usize].occupy(iv.end, svc);
            iv.end = xfer.end;
        }
        // Stage 3: the shared DRAM bus in page order.
        for iv in out.iter_mut() {
            let dma = self.dram.transfer(iv.end, self.cfg.page_size as u64);
            iv.end = dma.end;
        }
        out
    }

    /// Charges one page program: DMA from DRAM, channel transfer, die tPROG.
    pub fn program_page(&mut self, channel: u16, chip: u16, now: SimTime) -> Interval {
        let svc = self.channel_service_ns();
        let dma = self.dram.transfer(now, self.cfg.page_size as u64);
        let xfer = self.channels[channel as usize].occupy(dma.end, svc);
        self.tracer.span(
            TraceLevel::Full,
            pid::FLASH,
            1 + channel as u32,
            "program",
            "flash-chan",
            xfer,
            &[("bytes", self.cfg.page_size as f64)],
        );
        let ci = self.chip_idx(channel, chip);
        let prog = self.chips[ci].occupy(xfer.end, self.cfg.t_program_ns);
        Interval {
            start: dma.start,
            end: prog.end,
        }
    }

    /// Charges one block erase (occupies the die only).
    pub fn erase_block(&mut self, channel: u16, chip: u16, now: SimTime) -> Interval {
        let ci = self.chip_idx(channel, chip);
        self.chips[ci].occupy(now, self.cfg.t_erase_ns)
    }

    /// Total busy time of the shared DRAM bus, in nanoseconds (the device's
    /// internal-transfer activity, used for energy accounting).
    pub fn dram_busy_ns(&self) -> u64 {
        self.dram.busy_total_ns()
    }

    /// Bytes moved over the DRAM bus.
    pub fn dram_bytes(&self) -> u64 {
        self.dram.bytes_moved()
    }

    /// Utilization of the DRAM bus over `[0, elapsed]`.
    pub fn dram_utilization(&self, elapsed: SimTime) -> f64 {
        self.dram.utilization(elapsed)
    }

    /// Sum of die busy time, in nanoseconds.
    pub fn chips_busy_ns(&self) -> u64 {
        self.chips.iter().map(Timeline::busy_total_ns).sum()
    }

    /// The instant every resource is idle again.
    pub fn drained_at(&self) -> SimTime {
        let chips = self
            .chips
            .iter()
            .map(Timeline::busy_until)
            .max()
            .unwrap_or(SimTime::ZERO);
        let chans = self
            .channels
            .iter()
            .map(Timeline::busy_until)
            .max()
            .unwrap_or(SimTime::ZERO);
        chips.max(chans).max(self.dram.busy_until())
    }

    /// Resets all timelines to idle (e.g. between load phase and the timed
    /// query phase of an experiment).
    pub fn reset(&mut self) {
        for t in &mut self.chips {
            t.reset();
        }
        for t in &mut self.channels {
            t.reset();
        }
        self.dram.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reads `n` pages striped round-robin over channels and chips and
    /// returns achieved bandwidth in MB/s.
    fn striped_read_bw(cfg: &FlashConfig, n: usize) -> f64 {
        let mut t = FlashTiming::new(cfg);
        let mut done = SimTime::ZERO;
        for i in 0..n {
            let ch = (i % cfg.channels) as u16;
            let chip = ((i / cfg.channels) % cfg.chips_per_channel) as u16;
            done = done.max(t.read_page(ch, chip, SimTime::ZERO).end);
        }
        (n * cfg.page_size) as f64 / done.as_secs_f64() / 1e6
    }

    #[test]
    fn internal_bandwidth_matches_table2() {
        // Paper Table 2: internal sequential read ~1,560 MB/s, limited by
        // the shared DRAM bus rather than NAND aggregate.
        let bw = striped_read_bw(&FlashConfig::default(), 4096);
        assert!(
            (1500.0..1600.0).contains(&bw),
            "internal seq read {bw:.0} MB/s, expected ~1560"
        );
    }

    #[test]
    fn dram_bus_is_the_bottleneck() {
        let cfg = FlashConfig::default();
        let mut t = FlashTiming::new(&cfg);
        let mut done = SimTime::ZERO;
        for i in 0..2048usize {
            let ch = (i % cfg.channels) as u16;
            let chip = ((i / cfg.channels) % cfg.chips_per_channel) as u16;
            done = done.max(t.read_page(ch, chip, SimTime::ZERO).end);
        }
        assert!(
            t.dram_utilization(done) > 0.95,
            "DRAM util {}",
            t.dram_utilization(done)
        );
    }

    #[test]
    fn single_channel_reads_are_slower_than_striped() {
        let cfg = FlashConfig::default();
        let mut t = FlashTiming::new(&cfg);
        let mut done = SimTime::ZERO;
        let n = 1024usize;
        for i in 0..n {
            // All on channel 0, rotating chips (chip interleave only).
            let chip = (i % cfg.chips_per_channel) as u16;
            done = done.max(t.read_page(0, chip, SimTime::ZERO).end);
        }
        let bw = (n * cfg.page_size) as f64 / done.as_secs_f64() / 1e6;
        assert!(bw < 500.0, "single channel read {bw:.0} MB/s");
        assert!(bw > 200.0, "single channel read {bw:.0} MB/s");
    }

    #[test]
    fn chip_interleaving_hides_cell_read_time() {
        // With one die per channel the 50us tR serializes; with four dies it
        // overlaps the channel transfers and bandwidth rises.
        let one = FlashConfig {
            chips_per_channel: 1,
            channels: 1,
            ..FlashConfig::default()
        };
        let four = FlashConfig {
            chips_per_channel: 4,
            channels: 1,
            ..FlashConfig::default()
        };
        let bw1 = striped_read_bw(&one, 512);
        let bw4 = striped_read_bw(&four, 512);
        assert!(bw4 > bw1 * 2.0, "bw1={bw1:.0} bw4={bw4:.0}");
    }

    #[test]
    fn program_throughput_is_die_limited() {
        let cfg = FlashConfig::default();
        let mut t = FlashTiming::new(&cfg);
        let mut done = SimTime::ZERO;
        let n = 1024usize;
        for i in 0..n {
            let ch = (i % cfg.channels) as u16;
            let chip = ((i / cfg.channels) % cfg.chips_per_channel) as u16;
            done = done.max(t.program_page(ch, chip, SimTime::ZERO).end);
        }
        let bw = (n * cfg.page_size) as f64 / done.as_secs_f64() / 1e6;
        // 32 dies * 8KB/600us ~ 437 MB/s: far below read bandwidth.
        assert!((300.0..500.0).contains(&bw), "program bw {bw:.0} MB/s");
    }

    #[test]
    fn erase_occupies_die_blocking_reads() {
        let cfg = FlashConfig::default();
        let mut t = FlashTiming::new(&cfg);
        let e = t.erase_block(0, 0, SimTime::ZERO);
        assert_eq!(e.duration().as_nanos(), cfg.t_erase_ns);
        let r = t.read_page(0, 0, SimTime::ZERO);
        // The read queues behind the erase on the same die.
        assert!(r.start >= e.end);
        // A read on another die proceeds immediately.
        let r2 = t.read_page(0, 1, SimTime::ZERO);
        assert_eq!(r2.start, SimTime::ZERO);
    }

    #[test]
    fn reset_clears_all_resources() {
        let cfg = FlashConfig::default();
        let mut t = FlashTiming::new(&cfg);
        t.read_page(0, 0, SimTime::ZERO);
        t.reset();
        assert_eq!(t.dram_busy_ns(), 0);
        assert_eq!(t.chips_busy_ns(), 0);
        assert_eq!(t.drained_at(), SimTime::ZERO);
    }
}
