//! The assembled flash device: NAND array + FTL + controller timing.
//!
//! [`FlashSsd`] is the logical-block device both the host path and the
//! Smart SSD runtime sit on. Reads and writes move real bytes *and* charge
//! simulated time, so functional results and timing results always come
//! from the same execution.

use crate::config::FlashConfig;
use crate::ftl::Ftl;
use crate::nand::{NandArray, NandError};
use crate::timing::FlashTiming;
use bytes::Bytes;
use smartssd_sim::{Interval, SimTime};
use std::fmt;

/// Errors surfaced by the block interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlashError {
    /// LBA beyond the advertised logical capacity.
    LbaOutOfRange(u64),
    /// Read of an LBA that was never written (or was trimmed).
    Unmapped(u64),
    /// No free space even after garbage collection.
    DeviceFull,
    /// Injected uncorrectable media error; a retry re-reads the page.
    /// `failed_at` is the simulated completion time of the failed read —
    /// retries must be issued no earlier than this, so recovery latency is
    /// charged to the run instead of replaying at the original issue time.
    Uncorrectable {
        /// Logical address of the failed read.
        lba: u64,
        /// Completion time of the failed read attempt.
        failed_at: SimTime,
    },
    /// Internal NAND rule violation — indicates an emulator bug.
    Nand(NandError),
}

impl fmt::Display for FlashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlashError::LbaOutOfRange(l) => write!(f, "LBA {l} out of range"),
            FlashError::Unmapped(l) => write!(f, "LBA {l} is unmapped"),
            FlashError::DeviceFull => write!(f, "device full (GC reclaimed nothing)"),
            FlashError::Uncorrectable { lba, failed_at } => {
                write!(
                    f,
                    "uncorrectable read error at LBA {lba} (failed at {failed_at})"
                )
            }
            FlashError::Nand(e) => write!(f, "NAND error: {e}"),
        }
    }
}

impl std::error::Error for FlashError {}

impl From<NandError> for FlashError {
    fn from(e: NandError) -> Self {
        FlashError::Nand(e)
    }
}

/// Operation counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlashStats {
    /// Page reads requested by the host/device runtime.
    pub reads: u64,
    /// Page writes requested by the host/device runtime.
    pub writes: u64,
    /// Valid-page relocations performed by garbage collection.
    pub gc_moves: u64,
    /// Block erases.
    pub erases: u64,
    /// Correctable read errors recovered by an ECC retry.
    pub ecc_retries: u64,
    /// Uncorrectable read errors surfaced to the caller.
    pub ecc_failures: u64,
    /// Silently-corrupted reads injected (ECC escapes).
    pub silent_corruptions: u64,
}

impl FlashStats {
    /// Write amplification: physical programs per host write.
    pub fn write_amplification(&self) -> f64 {
        if self.writes == 0 {
            1.0
        } else {
            (self.writes + self.gc_moves) as f64 / self.writes as f64
        }
    }
}

/// A deterministic xorshift generator for error injection — keeps failure
/// tests reproducible without pulling a full RNG into the device.
#[derive(Debug, Clone)]
struct XorShift(u64);

impl XorShift {
    fn next_u32(&mut self) -> u32 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        (x >> 32) as u32
    }
}

/// The emulated SSD.
pub struct FlashSsd {
    cfg: FlashConfig,
    nand: NandArray,
    ftl: Ftl,
    timing: FlashTiming,
    stats: FlashStats,
    err_rng: XorShift,
    /// LBA that just failed with `Uncorrectable`; the retry succeeds
    /// (models a read-retry with adjusted reference voltages).
    pending_retry: Option<u64>,
    /// LBA whose last read returned silently-corrupted data; the re-read
    /// returns the true payload.
    pending_clean: Option<u64>,
}

impl FlashSsd {
    /// Builds an erased device.
    pub fn new(cfg: FlashConfig) -> Self {
        cfg.validate();
        Self {
            nand: NandArray::new(&cfg),
            ftl: Ftl::new(&cfg),
            timing: FlashTiming::new(&cfg),
            stats: FlashStats::default(),
            err_rng: XorShift(0x9E37_79B9_7F4A_7C15),
            pending_retry: None,
            pending_clean: None,
            cfg,
        }
    }

    /// Device configuration.
    pub fn config(&self) -> &FlashConfig {
        &self.cfg
    }

    /// Arms (or replaces) the scripted gray-failure plan on this device's
    /// flash path — the per-device fault-injection hook fleet chaos
    /// scenarios use. An empty plan disarms. The plan is threaded into the
    /// timing model too, which holds its own config copy.
    pub fn arm_fault_plan(&mut self, plan: smartssd_sim::DeviceFaultPlan) {
        self.cfg.fault_plan = plan.clone();
        self.timing.arm_fault_plan(plan);
    }

    /// Advertised logical capacity in pages.
    pub fn logical_pages(&self) -> u64 {
        self.ftl.logical_pages()
    }

    /// Operation counters so far.
    pub fn stats(&self) -> &FlashStats {
        &self.stats
    }

    /// Wear spread across all blocks `(min, max)` erase counts.
    pub fn wear_spread(&self) -> (u32, u32) {
        self.nand.wear_spread()
    }

    /// Busy time of the internal DRAM bus (energy accounting).
    pub fn dram_busy_ns(&self) -> u64 {
        self.timing.dram_busy_ns()
    }

    /// Attaches a tracer to the flash data path (channel occupancy and DRAM
    /// bus transfers).
    pub fn set_tracer(&mut self, tracer: smartssd_sim::Tracer) {
        self.timing.set_tracer(tracer);
    }

    /// DRAM bus utilization over `[0, elapsed]`.
    pub fn dram_utilization(&self, elapsed: SimTime) -> f64 {
        self.timing.dram_utilization(elapsed)
    }

    /// Resets timing state (not data): used between the untimed load phase
    /// and a timed experiment.
    pub fn reset_timing(&mut self) {
        self.timing.reset();
        self.stats = FlashStats::default();
    }

    /// Writes one logical page. Runs GC first if the target die is low on
    /// free blocks. Returns the simulated interval of the write itself.
    pub fn write(&mut self, lba: u64, data: Bytes, now: SimTime) -> Result<Interval, FlashError> {
        if lba >= self.ftl.logical_pages() {
            return Err(FlashError::LbaOutOfRange(lba));
        }
        assert_eq!(data.len(), self.cfg.page_size, "payload must be page-sized");
        // Invalidate the previous version, if any.
        if let Some(old) = self.ftl.lookup(lba) {
            self.nand.invalidate(old)?;
        }
        // Try the stripe target first; if that die is out of space even
        // after GC, spill to the next die (allocation is global even though
        // GC relocation is per-die).
        let dies = self.cfg.channels * self.cfg.chips_per_channel;
        for _ in 0..dies {
            let (ch, chip) = self.ftl.next_stripe();
            let gc_done = match self.ensure_space(ch, chip, now) {
                Ok(t) => t,
                Err(FlashError::DeviceFull) => continue,
                Err(e) => return Err(e),
            };
            let Some(ppa) = self.ftl.alloc_slot(ch, chip, &self.nand) else {
                continue;
            };
            self.nand.program(ppa, lba, data)?;
            self.ftl.map_set(lba, ppa);
            self.stats.writes += 1;
            // The host write waits for any GC that had to run first.
            return Ok(self.timing.program_page(ch, chip, gc_done.max(now)));
        }
        Err(FlashError::DeviceFull)
    }

    /// Reads one logical page: returns the payload and the simulated
    /// interval from issue to the page being available in device DRAM.
    pub fn read(&mut self, lba: u64, now: SimTime) -> Result<(Bytes, Interval), FlashError> {
        if lba >= self.ftl.logical_pages() {
            return Err(FlashError::LbaOutOfRange(lba));
        }
        let ppa = self.ftl.lookup(lba).ok_or(FlashError::Unmapped(lba))?;
        let data = self.nand.read(ppa)?;
        self.stats.reads += 1;
        let mut iv = self.timing.read_page(ppa.channel, ppa.chip, now);
        // Scripted ECC burst: a read of an afflicted LBA whose cell read
        // starts inside the window needs one correctable re-read. Data is
        // intact by construction — the burst costs time, never answers —
        // and the extra read is charged after the failed attempt, so
        // recovery latency lands on the run. Composes with (and runs
        // before) the rate-based injection below.
        if self.cfg.fault_plan.ecc_burst_hits(lba, iv.start) {
            self.stats.ecc_retries += 1;
            iv = Interval {
                start: iv.start,
                end: self.timing.read_page(ppa.channel, ppa.chip, iv.end).end,
            };
        }
        // Error injection: correctable errors cost a re-read; an
        // uncorrectable error is surfaced once, after which the retry (with
        // adjusted read-reference voltage) succeeds.
        if self.pending_retry == Some(lba) {
            self.pending_retry = None;
        } else if self.pending_clean == Some(lba) {
            self.pending_clean = None;
        } else if self.cfg.ecc_fail_rate > 0
            || self.cfg.ecc_retry_rate > 0
            || self.cfg.silent_corruption_rate > 0
        {
            // Injection enabled: one RNG draw per read. With all rates at
            // zero (the common configuration) this whole arm is skipped, so
            // clean reads hand back the shared payload with no RNG traffic
            // and no copies; a corrupted copy is only materialized below
            // when silent-corruption injection actually fires.
            let draw = self.err_rng.next_u32();
            if self.cfg.ecc_fail_rate > 0 && draw < self.cfg.ecc_fail_rate {
                self.stats.ecc_failures += 1;
                self.pending_retry = Some(lba);
                // The failed attempt still occupied the channel and chip:
                // report its completion time so the caller's retry starts
                // after it, not in parallel with it.
                return Err(FlashError::Uncorrectable {
                    lba,
                    failed_at: iv.end,
                });
            }
            if self.cfg.ecc_retry_rate > 0 && draw < self.cfg.ecc_retry_rate {
                self.stats.ecc_retries += 1;
                iv = Interval {
                    start: iv.start,
                    end: self.timing.read_page(ppa.channel, ppa.chip, iv.end).end,
                };
            }
            if self.cfg.silent_corruption_rate > 0 && draw < self.cfg.silent_corruption_rate {
                // An ECC escape: hand back a flipped byte with no error.
                // The next read of this LBA returns the true payload.
                self.stats.silent_corruptions += 1;
                self.pending_clean = Some(lba);
                let mut bad = data.to_vec();
                let idx = bad.len() / 2;
                bad[idx] ^= 0x01;
                return Ok((Bytes::from(bad), iv));
            }
        }
        Ok((data, iv))
    }

    /// True when a run of reads can be charged as one batch with results
    /// bit-identical to page-at-a-time [`Self::read`] calls: no error
    /// injection configured (so no RNG draws are owed), no one-shot retry
    /// or scrub pending, no scripted fault plan perturbing reads (each
    /// page must observe the slowdown factor / ECC burst in effect at its
    /// own start time), and no tracer expecting per-transfer spans.
    pub fn can_batch_reads(&self) -> bool {
        self.cfg.ecc_fail_rate == 0
            && self.cfg.ecc_retry_rate == 0
            && self.cfg.silent_corruption_rate == 0
            && !self.cfg.fault_plan.perturbs_reads()
            && self.pending_retry.is_none()
            && self.pending_clean.is_none()
            && self.timing.tracer_quiet()
    }

    /// Looks up and fetches one page's payload **without** charging timing
    /// or counting the read — the planning half of a batched read. Returns
    /// the payload and the physical `(channel, chip)` the page lives on.
    ///
    /// A caller that peeks a run of pages, validates them, and then posts
    /// [`Self::charge_reads`] for the same coordinates performs exactly the
    /// reads the sequential loop would; if validation fails midway, nothing
    /// has been charged and the caller can fall back to [`Self::read`] with
    /// no state to unwind.
    pub fn peek_page(&self, lba: u64) -> Result<(Bytes, (u16, u16)), FlashError> {
        if lba >= self.ftl.logical_pages() {
            return Err(FlashError::LbaOutOfRange(lba));
        }
        let ppa = self.ftl.lookup(lba).ok_or(FlashError::Unmapped(lba))?;
        let data = self.nand.read(ppa)?;
        Ok((data, (ppa.channel, ppa.chip)))
    }

    /// Charges the timing and statistics for a batch of page reads issued
    /// at `now`, one per coordinate from [`Self::peek_page`], in order.
    /// Only meaningful when [`Self::can_batch_reads`] holds (checked by
    /// debug assertion): with injection disabled, [`Self::read`] is exactly
    /// "fetch payload + charge timing + count", which this call completes.
    pub fn charge_reads(&mut self, coords: &[(u16, u16)], now: SimTime) -> Vec<Interval> {
        debug_assert!(self.can_batch_reads(), "batched charge with injection live");
        self.stats.reads += coords.len() as u64;
        self.timing.read_pages(coords, now)
    }

    /// Trims a logical page: the mapping is dropped and the physical page
    /// becomes GC fodder.
    pub fn trim(&mut self, lba: u64) -> Result<(), FlashError> {
        if lba >= self.ftl.logical_pages() {
            return Err(FlashError::LbaOutOfRange(lba));
        }
        if let Some(ppa) = self.ftl.lookup(lba) {
            self.nand.invalidate(ppa)?;
            self.ftl.map_clear(lba);
        }
        Ok(())
    }

    /// Runs garbage collection on a die until its free-block count reaches
    /// the low-water mark. Returns the sim time at which GC finished.
    fn ensure_space(&mut self, ch: u16, chip: u16, now: SimTime) -> Result<SimTime, FlashError> {
        let mut t = now;
        while self.ftl.free_blocks(ch, chip) < self.cfg.gc_low_water_blocks {
            let Some(victim) = self.ftl.pick_victim(ch, chip, &self.nand) else {
                // Nothing reclaimable; if we still have at least one free
                // block the write can proceed, otherwise the device is full.
                return if self.ftl.free_blocks(ch, chip) > 0 {
                    Ok(t)
                } else {
                    Err(FlashError::DeviceFull)
                };
            };
            // Relocate the victim's valid pages within the same die.
            for (page, lba) in self.nand.valid_pages(ch, chip, victim) {
                let src = crate::nand::Ppa {
                    channel: ch,
                    chip,
                    block: victim,
                    page,
                };
                let data = self.nand.read(src)?;
                t = self.timing.read_page(ch, chip, t).end;
                let dst = self
                    .ftl
                    .alloc_slot(ch, chip, &self.nand)
                    .ok_or(FlashError::DeviceFull)?;
                self.nand.program(dst, lba, data)?;
                t = self.timing.program_page(ch, chip, t).end;
                self.nand.invalidate(src)?;
                self.ftl.map_set(lba, dst);
                self.stats.gc_moves += 1;
            }
            self.nand.erase(ch, chip, victim)?;
            t = self.timing.erase_block(ch, chip, t).end;
            self.ftl.retire_victim(ch, chip, victim);
            self.stats.erases += 1;
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(cfg: &FlashConfig, tag: u64) -> Bytes {
        let mut v = vec![0u8; cfg.page_size];
        v[..8].copy_from_slice(&tag.to_le_bytes());
        Bytes::from(v)
    }

    #[test]
    fn write_read_round_trip() {
        let cfg = FlashConfig::tiny();
        let mut ssd = FlashSsd::new(cfg.clone());
        for lba in 0..10u64 {
            ssd.write(lba, page(&cfg, lba), SimTime::ZERO).unwrap();
        }
        for lba in 0..10u64 {
            let (data, _) = ssd.read(lba, SimTime::ZERO).unwrap();
            assert_eq!(&data[..8], &lba.to_le_bytes());
        }
    }

    #[test]
    fn overwrite_returns_latest_version() {
        let cfg = FlashConfig::tiny();
        let mut ssd = FlashSsd::new(cfg.clone());
        ssd.write(3, page(&cfg, 100), SimTime::ZERO).unwrap();
        ssd.write(3, page(&cfg, 200), SimTime::ZERO).unwrap();
        let (data, _) = ssd.read(3, SimTime::ZERO).unwrap();
        assert_eq!(&data[..8], &200u64.to_le_bytes());
    }

    #[test]
    fn unmapped_and_out_of_range_reads_fail() {
        let cfg = FlashConfig::tiny();
        let mut ssd = FlashSsd::new(cfg);
        assert_eq!(
            ssd.read(0, SimTime::ZERO).unwrap_err(),
            FlashError::Unmapped(0)
        );
        let big = ssd.logical_pages();
        assert_eq!(
            ssd.read(big, SimTime::ZERO).unwrap_err(),
            FlashError::LbaOutOfRange(big)
        );
    }

    #[test]
    fn trim_unmaps() {
        let cfg = FlashConfig::tiny();
        let mut ssd = FlashSsd::new(cfg.clone());
        ssd.write(1, page(&cfg, 1), SimTime::ZERO).unwrap();
        ssd.trim(1).unwrap();
        assert_eq!(
            ssd.read(1, SimTime::ZERO).unwrap_err(),
            FlashError::Unmapped(1)
        );
        // Trimming again (or an unmapped LBA) is a no-op, not an error.
        ssd.trim(1).unwrap();
    }

    #[test]
    fn sustained_overwrites_trigger_gc_and_preserve_data() {
        let cfg = FlashConfig::tiny();
        let mut ssd = FlashSsd::new(cfg.clone());
        let logical = ssd.logical_pages();
        // Fill the device, then overwrite everything several times: GC must
        // kick in and every read must still return the latest version.
        let mut version = vec![0u64; logical as usize];
        let mut stamp = 0u64;
        for round in 0..6 {
            for lba in 0..logical {
                stamp += 1;
                version[lba as usize] = stamp;
                ssd.write(lba, page(&cfg, stamp), SimTime::ZERO)
                    .unwrap_or_else(|e| panic!("round {round} lba {lba}: {e}"));
            }
        }
        assert!(ssd.stats().gc_moves > 0, "GC never ran");
        assert!(ssd.stats().erases > 0);
        assert!(ssd.stats().write_amplification() > 1.0);
        for lba in 0..logical {
            let (data, _) = ssd.read(lba, SimTime::ZERO).unwrap();
            assert_eq!(&data[..8], &version[lba as usize].to_le_bytes());
        }
    }

    #[test]
    fn random_overwrites_keep_wear_bounded() {
        let cfg = FlashConfig::tiny();
        let mut ssd = FlashSsd::new(cfg.clone());
        let logical = ssd.logical_pages();
        let mut rng = XorShift(12345);
        for lba in 0..logical {
            ssd.write(lba, page(&cfg, lba), SimTime::ZERO).unwrap();
        }
        for i in 0..3000u64 {
            let lba = (rng.next_u32() as u64) % logical;
            ssd.write(lba, page(&cfg, i), SimTime::ZERO).unwrap();
        }
        let (min, max) = ssd.wear_spread();
        // Wear-aware allocation keeps the spread within a modest band.
        assert!(
            max - min <= (max / 2).max(8),
            "wear spread too wide: min={min} max={max}"
        );
    }

    #[test]
    fn correctable_errors_retry_and_succeed() {
        let cfg = FlashConfig {
            ecc_retry_rate: u32::MAX / 2, // ~50% of reads need a retry
            ..FlashConfig::tiny()
        };
        let mut ssd = FlashSsd::new(cfg.clone());
        for lba in 0..20u64 {
            ssd.write(lba, page(&cfg, lba), SimTime::ZERO).unwrap();
        }
        for lba in 0..20u64 {
            let (data, _) = ssd.read(lba, SimTime::ZERO).unwrap();
            assert_eq!(&data[..8], &lba.to_le_bytes());
        }
        assert!(ssd.stats().ecc_retries > 0);
    }

    #[test]
    fn uncorrectable_error_surfaces_then_retry_succeeds() {
        let cfg = FlashConfig {
            ecc_fail_rate: u32::MAX, // every fresh read fails once
            ..FlashConfig::tiny()
        };
        let mut ssd = FlashSsd::new(cfg.clone());
        ssd.write(0, page(&cfg, 7), SimTime::ZERO).unwrap();
        let err = ssd.read(0, SimTime::ZERO).unwrap_err();
        let failed_at = match err {
            FlashError::Uncorrectable { lba: 0, failed_at } => failed_at,
            other => panic!("expected Uncorrectable at LBA 0, got {other:?}"),
        };
        // The failed attempt was still charged to the channel/chip, so the
        // reported completion time is strictly after issue.
        assert!(failed_at > SimTime::ZERO);
        let (data, _) = ssd.read(0, SimTime::ZERO).unwrap();
        assert_eq!(&data[..8], &7u64.to_le_bytes());
        assert_eq!(ssd.stats().ecc_failures, 1);
    }

    #[test]
    fn silent_corruption_flips_bytes_then_clears_on_reread() {
        let cfg = FlashConfig {
            silent_corruption_rate: u32::MAX, // every fresh read corrupts
            ..FlashConfig::tiny()
        };
        let mut ssd = FlashSsd::new(cfg.clone());
        ssd.write(0, page(&cfg, 7), SimTime::ZERO).unwrap();
        let (bad, _) = ssd.read(0, SimTime::ZERO).unwrap();
        assert_ne!(bad, page(&cfg, 7), "first read should be corrupted");
        let (good, _) = ssd.read(0, SimTime::ZERO).unwrap();
        assert_eq!(good, page(&cfg, 7), "re-read must return the truth");
        assert!(ssd.stats().silent_corruptions >= 1);
    }

    #[test]
    fn reset_timing_clears_stats_not_data() {
        let cfg = FlashConfig::tiny();
        let mut ssd = FlashSsd::new(cfg.clone());
        ssd.write(0, page(&cfg, 1), SimTime::ZERO).unwrap();
        ssd.reset_timing();
        assert_eq!(ssd.stats().writes, 0);
        assert_eq!(ssd.dram_busy_ns(), 0);
        let (data, _) = ssd.read(0, SimTime::ZERO).unwrap();
        assert_eq!(&data[..8], &1u64.to_le_bytes());
    }

    #[test]
    fn batched_reads_match_sequential_reads() {
        // Two identically-written devices: one read page-at-a-time, one
        // through the peek/charge batch path. Every interval and counter
        // must agree.
        let cfg = FlashConfig::default();
        let build = || {
            let mut ssd = FlashSsd::new(cfg.clone());
            for lba in 0..300u64 {
                ssd.write(lba, page(&cfg, lba), SimTime::ZERO).unwrap();
            }
            ssd.reset_timing();
            ssd
        };
        let mut seq = build();
        let mut bat = build();
        let at = SimTime::from_nanos(17);

        let (seq_data, seq_ivs): (Vec<Bytes>, Vec<Interval>) =
            (0..300u64).map(|lba| seq.read(lba, at).unwrap()).unzip();

        assert!(bat.can_batch_reads());
        let mut coords = Vec::new();
        for lba in 0..300u64 {
            let (data, coord) = bat.peek_page(lba).unwrap();
            assert_eq!(data, seq_data[lba as usize]);
            coords.push(coord);
        }
        let bat_ivs = bat.charge_reads(&coords, at);
        assert_eq!(seq_ivs, bat_ivs);
        assert_eq!(bat.stats().reads, 300);
        assert_eq!(seq.dram_busy_ns(), bat.dram_busy_ns());

        // Timelines converged: the next sequential read on each device
        // lands on identical intervals.
        let (_, a) = seq.read(0, at).unwrap();
        let (_, b) = bat.read(0, at).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn injection_disables_read_batching() {
        let cfg = FlashConfig {
            ecc_retry_rate: 1,
            ..FlashConfig::tiny()
        };
        assert!(!FlashSsd::new(cfg).can_batch_reads());
        let clean = FlashConfig::tiny();
        assert!(FlashSsd::new(clean).can_batch_reads());
    }

    #[test]
    fn striped_table_read_achieves_internal_bandwidth() {
        // End-to-end Table 2 check at the device level: write a table
        // sequentially, then read it back and measure internal bandwidth.
        let cfg = FlashConfig::default();
        let mut ssd = FlashSsd::new(cfg.clone());
        let n: u64 = 4096;
        for lba in 0..n {
            ssd.write(lba, page(&cfg, lba), SimTime::ZERO).unwrap();
        }
        ssd.reset_timing();
        let mut done = SimTime::ZERO;
        for lba in 0..n {
            let (_, iv) = ssd.read(lba, SimTime::ZERO).unwrap();
            done = done.max(iv.end);
        }
        let bw = (n * cfg.page_size as u64) as f64 / done.as_secs_f64() / 1e6;
        assert!(
            (1450.0..1600.0).contains(&bw),
            "device-level internal read {bw:.0} MB/s, expected ~1560"
        );
    }
}
