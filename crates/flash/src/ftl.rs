//! Page-mapped Flash Translation Layer bookkeeping.
//!
//! The FTL is the firmware component the paper's Section 2 describes running
//! on the SSD's embedded processors: it maps host Logical Block Addresses to
//! Physical Block Addresses. This module owns the mapping tables, per-die
//! free/used block lists, active (currently-programming) blocks, and the
//! round-robin write-striping cursor. The orchestration that couples these
//! decisions to the NAND array and the timing model lives in [`crate::ssd`].
//!
//! Design choices mirror common SSD firmware:
//!
//! * **page-mapped**: one map entry per logical page (no block-mapping
//!   read-modify-write penalties);
//! * **striped allocation**: consecutive writes round-robin across
//!   `(channel, chip)` pairs, so sequentially-written tables can later be
//!   read with full channel parallelism — this is what makes the Table 2
//!   internal-bandwidth experiment work;
//! * **wear-aware allocation**: the free block with the lowest erase count
//!   is used next;
//! * **greedy GC victim selection**: the used block with the fewest valid
//!   pages is collected first.

use crate::nand::{NandArray, Ppa};

/// Per-die allocation state.
#[derive(Debug, Clone)]
struct DieState {
    /// Block currently accepting programs, with its next page index.
    active: Option<(u32, u32)>,
    /// Erased blocks available for allocation.
    free: Vec<u32>,
    /// Fully-programmed blocks (GC victim candidates).
    used: Vec<u32>,
}

/// FTL bookkeeping: LBA map plus per-die block state.
pub struct Ftl {
    channels: usize,
    chips_per_channel: usize,
    pages_per_block: usize,
    /// `lba -> ppa` for every mapped logical page.
    map: Vec<Option<Ppa>>,
    dies: Vec<DieState>,
    /// Round-robin cursor over `(channel, chip)` pairs.
    stripe: usize,
}

impl Ftl {
    /// Creates an FTL with all blocks free and nothing mapped.
    pub fn new(cfg: &crate::config::FlashConfig) -> Self {
        let dies = (0..cfg.channels * cfg.chips_per_channel)
            .map(|_| DieState {
                active: None,
                free: (0..cfg.blocks_per_chip as u32).collect(),
                used: Vec::new(),
            })
            .collect();
        Self {
            channels: cfg.channels,
            chips_per_channel: cfg.chips_per_channel,
            pages_per_block: cfg.pages_per_block,
            map: vec![None; cfg.logical_pages() as usize],
            dies,
            stripe: 0,
        }
    }

    #[inline]
    fn die_idx(&self, channel: u16, chip: u16) -> usize {
        channel as usize * self.chips_per_channel + chip as usize
    }

    /// Number of logical pages addressable.
    pub fn logical_pages(&self) -> u64 {
        self.map.len() as u64
    }

    /// Current physical location of a logical page.
    pub fn lookup(&self, lba: u64) -> Option<Ppa> {
        self.map.get(lba as usize).copied().flatten()
    }

    /// Records a new mapping.
    pub fn map_set(&mut self, lba: u64, ppa: Ppa) {
        self.map[lba as usize] = Some(ppa);
    }

    /// Clears a mapping (trim).
    pub fn map_clear(&mut self, lba: u64) {
        self.map[lba as usize] = None;
    }

    /// Advances the stripe cursor and returns the next `(channel, chip)`
    /// target for a host write.
    pub fn next_stripe(&mut self) -> (u16, u16) {
        let i = self.stripe;
        self.stripe = (self.stripe + 1) % (self.channels * self.chips_per_channel);
        (
            (i / self.chips_per_channel) as u16,
            (i % self.chips_per_channel) as u16,
        )
    }

    /// Number of free (erased, unallocated) blocks on a die.
    pub fn free_blocks(&self, channel: u16, chip: u16) -> usize {
        self.dies[self.die_idx(channel, chip)].free.len()
    }

    /// Allocates the next programmable page slot on the die, drawing a new
    /// active block from the free list (lowest erase count first) when
    /// needed. Returns `None` if the die has no active block and no free
    /// blocks — the caller must GC or fail.
    pub fn alloc_slot(&mut self, channel: u16, chip: u16, nand: &NandArray) -> Option<Ppa> {
        let ppb = self.pages_per_block as u32;
        let di = self.die_idx(channel, chip);
        // Retire a full active block to the used list.
        if let Some((blk, next)) = self.dies[di].active {
            if next >= ppb {
                self.dies[di].used.push(blk);
                self.dies[di].active = None;
            }
        }
        if self.dies[di].active.is_none() {
            // Wear-aware: take the free block with the lowest erase count.
            let die = &mut self.dies[di];
            let pos = die
                .free
                .iter()
                .enumerate()
                .min_by_key(|&(_, &b)| (nand.block(channel, chip, b).erase_count(), b))?
                .0;
            let blk = die.free.swap_remove(pos);
            die.active = Some((blk, 0));
        }
        let die = &mut self.dies[di];
        let (blk, next) = die.active.expect("just ensured");
        die.active = Some((blk, next + 1));
        Some(Ppa {
            channel,
            chip,
            block: blk,
            page: next,
        })
    }

    /// Picks the GC victim on a die: the used block with the fewest valid
    /// pages. Returns `None` when there are no used blocks, or when even the
    /// best victim is fully valid (collecting it would reclaim nothing).
    pub fn pick_victim(&self, channel: u16, chip: u16, nand: &NandArray) -> Option<u32> {
        let di = self.die_idx(channel, chip);
        let victim = self.dies[di]
            .used
            .iter()
            .copied()
            .min_by_key(|&b| nand.block(channel, chip, b).valid_count())?;
        if nand.block(channel, chip, victim).valid_count() as usize >= self.pages_per_block {
            None
        } else {
            Some(victim)
        }
    }

    /// Moves a just-erased victim block back to the die's free list.
    pub fn retire_victim(&mut self, channel: u16, chip: u16, block: u32) {
        let di = self.die_idx(channel, chip);
        let die = &mut self.dies[di];
        let pos = die
            .used
            .iter()
            .position(|&b| b == block)
            .expect("victim must be on the used list");
        die.used.swap_remove(pos);
        die.free.push(block);
    }

    /// Total mapped logical pages (diagnostics).
    pub fn mapped_count(&self) -> u64 {
        self.map.iter().filter(|m| m.is_some()).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlashConfig;

    fn setup() -> (FlashConfig, Ftl, NandArray) {
        let cfg = FlashConfig::tiny();
        let ftl = Ftl::new(&cfg);
        let nand = NandArray::new(&cfg);
        (cfg, ftl, nand)
    }

    #[test]
    fn stripe_round_robins_all_dies() {
        let (cfg, mut ftl, _) = setup();
        let total = cfg.channels * cfg.chips_per_channel;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..total {
            seen.insert(ftl.next_stripe());
        }
        assert_eq!(seen.len(), total);
        // Wraps around deterministically.
        assert_eq!(ftl.next_stripe(), (0, 0));
    }

    #[test]
    fn alloc_fills_block_sequentially_then_switches() {
        let (cfg, mut ftl, nand) = setup();
        let mut blocks = std::collections::HashSet::new();
        for i in 0..cfg.pages_per_block * 2 {
            let ppa = ftl.alloc_slot(0, 0, &nand).unwrap();
            assert_eq!(ppa.page as usize, i % cfg.pages_per_block);
            blocks.insert(ppa.block);
        }
        assert_eq!(blocks.len(), 2);
        assert_eq!(ftl.free_blocks(0, 0), cfg.blocks_per_chip - 2);
    }

    #[test]
    fn alloc_exhausts_to_none() {
        let (cfg, mut ftl, nand) = setup();
        let capacity = cfg.blocks_per_chip * cfg.pages_per_block;
        for _ in 0..capacity {
            assert!(ftl.alloc_slot(1, 1, &nand).is_some());
        }
        assert!(ftl.alloc_slot(1, 1, &nand).is_none());
    }

    #[test]
    fn map_operations() {
        let (_, mut ftl, _) = setup();
        let ppa = Ppa {
            channel: 0,
            chip: 1,
            block: 2,
            page: 3,
        };
        assert!(ftl.lookup(5).is_none());
        ftl.map_set(5, ppa);
        assert_eq!(ftl.lookup(5), Some(ppa));
        assert_eq!(ftl.mapped_count(), 1);
        ftl.map_clear(5);
        assert!(ftl.lookup(5).is_none());
    }

    #[test]
    fn victim_selection_prefers_most_invalid() {
        let (cfg, mut ftl, mut nand) = setup();
        let page = bytes::Bytes::from(vec![0u8; cfg.page_size]);
        // Fill two blocks on die (0,0).
        for i in 0..cfg.pages_per_block * 2 {
            let ppa = ftl.alloc_slot(0, 0, &nand).unwrap();
            nand.program(ppa, i as u64, page.clone()).unwrap();
        }
        // Push a third allocation so both filled blocks land in `used`.
        let ppa = ftl.alloc_slot(0, 0, &nand).unwrap();
        nand.program(ppa, 999, page.clone()).unwrap();
        // Invalidate 3 pages of block 1, 1 page of block 0.
        for pg in 0..3 {
            nand.invalidate(Ppa {
                channel: 0,
                chip: 0,
                block: 1,
                page: pg,
            })
            .unwrap();
        }
        nand.invalidate(Ppa {
            channel: 0,
            chip: 0,
            block: 0,
            page: 0,
        })
        .unwrap();
        assert_eq!(ftl.pick_victim(0, 0, &nand), Some(1));
    }

    #[test]
    fn fully_valid_victim_rejected() {
        let (cfg, mut ftl, mut nand) = setup();
        let page = bytes::Bytes::from(vec![0u8; cfg.page_size]);
        for i in 0..cfg.pages_per_block + 1 {
            let ppa = ftl.alloc_slot(0, 0, &nand).unwrap();
            nand.program(ppa, i as u64, page.clone()).unwrap();
        }
        // One used block, fully valid: no point collecting it.
        assert_eq!(ftl.pick_victim(0, 0, &nand), None);
    }

    #[test]
    fn retire_returns_block_to_free_list() {
        let (cfg, mut ftl, mut nand) = setup();
        let page = bytes::Bytes::from(vec![0u8; cfg.page_size]);
        for i in 0..cfg.pages_per_block + 1 {
            let ppa = ftl.alloc_slot(0, 0, &nand).unwrap();
            nand.program(ppa, i as u64, page.clone()).unwrap();
        }
        let before = ftl.free_blocks(0, 0);
        nand.erase(0, 0, 0).unwrap();
        ftl.retire_victim(0, 0, 0);
        assert_eq!(ftl.free_blocks(0, 0), before + 1);
    }

    #[test]
    fn wear_aware_allocation_prefers_low_erase_blocks() {
        let (cfg, mut ftl, mut nand) = setup();
        // Artificially wear block 0 of die (0,0) heavily.
        for _ in 0..5 {
            nand.erase(0, 0, 0).unwrap();
        }
        // First allocation should avoid the worn block 0.
        let ppa = ftl.alloc_slot(0, 0, &nand).unwrap();
        assert_ne!(ppa.block, 0);
        let _ = cfg;
    }
}
