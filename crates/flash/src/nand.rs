//! The physical NAND array: page states, real data, and NAND rules.
//!
//! Enforces the constraints that shape FTL design: a page must be erased
//! before it can be programmed, pages within a block must be programmed in
//! order, and erasure happens at block granularity (paper Section 2). Each
//! block tracks its erase count for wear-levelling decisions.

use crate::config::FlashConfig;
use bytes::Bytes;
use std::fmt;

/// Physical page address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ppa {
    /// Channel index.
    pub channel: u16,
    /// Chip (die) index within the channel.
    pub chip: u16,
    /// Erase block within the chip.
    pub block: u32,
    /// Page within the block.
    pub page: u32,
}

impl fmt::Display for Ppa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ch{}/die{}/blk{}/pg{}",
            self.channel, self.chip, self.block, self.page
        )
    }
}

/// State of one physical page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageState {
    /// Erased and programmable.
    Free,
    /// Holds live data mapped from some LBA.
    Valid,
    /// Holds stale data awaiting garbage collection.
    Invalid,
}

/// Violations of NAND programming rules or addressing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NandError {
    /// Address outside the configured geometry.
    BadAddress(Ppa),
    /// Programming a page that is not in the `Free` state.
    ProgramNotFree(Ppa),
    /// Programming pages of a block out of order.
    ProgramOutOfOrder(Ppa),
    /// Reading a page that holds no data.
    ReadUnwritten(Ppa),
}

impl fmt::Display for NandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NandError::BadAddress(p) => write!(f, "address {p} outside geometry"),
            NandError::ProgramNotFree(p) => write!(f, "program to non-free page {p}"),
            NandError::ProgramOutOfOrder(p) => {
                write!(f, "out-of-order program within block at {p}")
            }
            NandError::ReadUnwritten(p) => write!(f, "read of unwritten page {p}"),
        }
    }
}

impl std::error::Error for NandError {}

/// One erase block's bookkeeping.
#[derive(Debug, Clone)]
pub struct Block {
    states: Vec<PageState>,
    /// Next page index that may legally be programmed.
    next_program: u32,
    /// Number of `Valid` pages (GC victim scoring).
    valid_count: u32,
    /// Lifetime erase count (wear).
    erase_count: u32,
}

impl Block {
    fn new(pages: usize) -> Self {
        Self {
            states: vec![PageState::Free; pages],
            next_program: 0,
            valid_count: 0,
            erase_count: 0,
        }
    }

    /// Number of valid pages in the block.
    pub fn valid_count(&self) -> u32 {
        self.valid_count
    }

    /// Lifetime erase count.
    pub fn erase_count(&self) -> u32 {
        self.erase_count
    }

    /// Whether every page is still `Free`.
    pub fn is_erased(&self) -> bool {
        self.next_program == 0
    }

    /// Whether no further page can be programmed.
    pub fn is_full(&self, pages_per_block: usize) -> bool {
        self.next_program as usize >= pages_per_block
    }

    /// State of page `i`.
    pub fn page_state(&self, i: usize) -> PageState {
        self.states[i]
    }
}

/// One NAND die: blocks plus the actual page payloads and their owning LBAs.
#[derive(Debug, Clone)]
struct Chip {
    blocks: Vec<Block>,
    /// Page payloads, indexed `block * pages_per_block + page`.
    data: Vec<Option<Bytes>>,
    /// Owning logical page per physical page (for GC relocation).
    owner: Vec<Option<u64>>,
}

/// The full physical array (channel-major chip order).
pub struct NandArray {
    cfg: FlashConfig,
    chips: Vec<Chip>,
    erases_total: u64,
}

impl NandArray {
    /// Allocates an erased array for the given geometry.
    pub fn new(cfg: &FlashConfig) -> Self {
        cfg.validate();
        let per_chip = cfg.blocks_per_chip * cfg.pages_per_block;
        let chips = (0..cfg.channels * cfg.chips_per_channel)
            .map(|_| Chip {
                blocks: (0..cfg.blocks_per_chip)
                    .map(|_| Block::new(cfg.pages_per_block))
                    .collect(),
                data: vec![None; per_chip],
                owner: vec![None; per_chip],
            })
            .collect();
        Self {
            cfg: cfg.clone(),
            chips,
            erases_total: 0,
        }
    }

    fn chip_index(&self, ppa: Ppa) -> Result<usize, NandError> {
        if (ppa.channel as usize) < self.cfg.channels
            && (ppa.chip as usize) < self.cfg.chips_per_channel
            && (ppa.block as usize) < self.cfg.blocks_per_chip
            && (ppa.page as usize) < self.cfg.pages_per_block
        {
            Ok(ppa.channel as usize * self.cfg.chips_per_channel + ppa.chip as usize)
        } else {
            Err(NandError::BadAddress(ppa))
        }
    }

    fn page_index(&self, ppa: Ppa) -> usize {
        ppa.block as usize * self.cfg.pages_per_block + ppa.page as usize
    }

    /// Programs `data` into a free page, recording the owning LBA.
    pub fn program(&mut self, ppa: Ppa, lba: u64, data: Bytes) -> Result<(), NandError> {
        assert_eq!(data.len(), self.cfg.page_size, "payload must be page-sized");
        let ci = self.chip_index(ppa)?;
        let pi = self.page_index(ppa);
        let block = &mut self.chips[ci].blocks[ppa.block as usize];
        match block.states[ppa.page as usize] {
            PageState::Free => {}
            _ => return Err(NandError::ProgramNotFree(ppa)),
        }
        if block.next_program != ppa.page {
            return Err(NandError::ProgramOutOfOrder(ppa));
        }
        block.states[ppa.page as usize] = PageState::Valid;
        block.next_program += 1;
        block.valid_count += 1;
        self.chips[ci].data[pi] = Some(data);
        self.chips[ci].owner[pi] = Some(lba);
        Ok(())
    }

    /// Reads a valid or invalid (but written) page's payload.
    pub fn read(&self, ppa: Ppa) -> Result<Bytes, NandError> {
        let ci = self.chip_index(ppa)?;
        let pi = self.page_index(ppa);
        self.chips[ci].data[pi]
            .clone()
            .ok_or(NandError::ReadUnwritten(ppa))
    }

    /// Marks a page stale (its LBA was overwritten or trimmed).
    pub fn invalidate(&mut self, ppa: Ppa) -> Result<(), NandError> {
        let ci = self.chip_index(ppa)?;
        let block = &mut self.chips[ci].blocks[ppa.block as usize];
        if block.states[ppa.page as usize] == PageState::Valid {
            block.states[ppa.page as usize] = PageState::Invalid;
            block.valid_count -= 1;
        }
        Ok(())
    }

    /// Erases a whole block, dropping payloads and bumping wear.
    pub fn erase(&mut self, channel: u16, chip: u16, block: u32) -> Result<(), NandError> {
        let probe = Ppa {
            channel,
            chip,
            block,
            page: 0,
        };
        let ci = self.chip_index(probe)?;
        let ppb = self.cfg.pages_per_block;
        let b = &mut self.chips[ci].blocks[block as usize];
        b.states.fill(PageState::Free);
        b.next_program = 0;
        b.valid_count = 0;
        b.erase_count += 1;
        let base = block as usize * ppb;
        for i in base..base + ppb {
            self.chips[ci].data[i] = None;
            self.chips[ci].owner[i] = None;
        }
        self.erases_total += 1;
        Ok(())
    }

    /// Owning LBA of a physical page, if written.
    pub fn owner(&self, ppa: Ppa) -> Option<u64> {
        let ci = self.chip_index(ppa).ok()?;
        self.chips[ci].owner[self.page_index(ppa)]
    }

    /// Block bookkeeping for `(channel, chip, block)`.
    pub fn block(&self, channel: u16, chip: u16, block: u32) -> &Block {
        let ci = channel as usize * self.cfg.chips_per_channel + chip as usize;
        &self.chips[ci].blocks[block as usize]
    }

    /// Iterates `(page_index, owner_lba)` for the valid pages of a block —
    /// what GC must relocate.
    pub fn valid_pages(&self, channel: u16, chip: u16, block: u32) -> Vec<(u32, u64)> {
        let ci = channel as usize * self.cfg.chips_per_channel + chip as usize;
        let b = &self.chips[ci].blocks[block as usize];
        let base = block as usize * self.cfg.pages_per_block;
        b.states
            .iter()
            .enumerate()
            .filter(|&(_, s)| *s == PageState::Valid)
            .map(|(i, _)| {
                (
                    i as u32,
                    self.chips[ci].owner[base + i].expect("valid page has an owner"),
                )
            })
            .collect()
    }

    /// Total erases performed (all blocks).
    pub fn erases_total(&self) -> u64 {
        self.erases_total
    }

    /// Spread of block erase counts `(min, max)` across the array — the
    /// wear-levelling quality metric.
    pub fn wear_spread(&self) -> (u32, u32) {
        let mut min = u32::MAX;
        let mut max = 0;
        for chip in &self.chips {
            for b in &chip.blocks {
                min = min.min(b.erase_count);
                max = max.max(b.erase_count);
            }
        }
        (if min == u32::MAX { 0 } else { min }, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr() -> NandArray {
        NandArray::new(&FlashConfig::tiny())
    }

    fn page_data(cfg: &FlashConfig, fill: u8) -> Bytes {
        Bytes::from(vec![fill; cfg.page_size])
    }

    #[test]
    fn program_read_round_trip() {
        let cfg = FlashConfig::tiny();
        let mut a = arr();
        let ppa = Ppa {
            channel: 0,
            chip: 0,
            block: 0,
            page: 0,
        };
        a.program(ppa, 42, page_data(&cfg, 0xAB)).unwrap();
        assert_eq!(a.read(ppa).unwrap(), page_data(&cfg, 0xAB));
        assert_eq!(a.owner(ppa), Some(42));
    }

    #[test]
    fn sequential_program_enforced() {
        let cfg = FlashConfig::tiny();
        let mut a = arr();
        let p2 = Ppa {
            channel: 0,
            chip: 0,
            block: 0,
            page: 2,
        };
        assert_eq!(
            a.program(p2, 0, page_data(&cfg, 0)).unwrap_err(),
            NandError::ProgramOutOfOrder(p2)
        );
    }

    #[test]
    fn double_program_rejected_until_erase() {
        let cfg = FlashConfig::tiny();
        let mut a = arr();
        let p = Ppa {
            channel: 1,
            chip: 1,
            block: 3,
            page: 0,
        };
        a.program(p, 1, page_data(&cfg, 1)).unwrap();
        assert!(matches!(
            a.program(p, 2, page_data(&cfg, 2)).unwrap_err(),
            NandError::ProgramNotFree(_)
        ));
        a.erase(1, 1, 3).unwrap();
        a.program(p, 2, page_data(&cfg, 2)).unwrap();
        assert_eq!(a.read(p).unwrap(), page_data(&cfg, 2));
        assert_eq!(a.block(1, 1, 3).erase_count(), 1);
    }

    #[test]
    fn invalidate_tracks_valid_count() {
        let cfg = FlashConfig::tiny();
        let mut a = arr();
        for pg in 0..4 {
            let p = Ppa {
                channel: 0,
                chip: 1,
                block: 2,
                page: pg,
            };
            a.program(p, pg as u64, page_data(&cfg, pg as u8)).unwrap();
        }
        assert_eq!(a.block(0, 1, 2).valid_count(), 4);
        a.invalidate(Ppa {
            channel: 0,
            chip: 1,
            block: 2,
            page: 1,
        })
        .unwrap();
        assert_eq!(a.block(0, 1, 2).valid_count(), 3);
        let valid = a.valid_pages(0, 1, 2);
        assert_eq!(valid.len(), 3);
        assert!(valid.iter().all(|&(pg, _)| pg != 1));
    }

    #[test]
    fn read_unwritten_fails() {
        let a = arr();
        let p = Ppa {
            channel: 0,
            chip: 0,
            block: 0,
            page: 0,
        };
        assert_eq!(a.read(p).unwrap_err(), NandError::ReadUnwritten(p));
    }

    #[test]
    fn bad_address_fails() {
        let cfg = FlashConfig::tiny();
        let mut a = arr();
        let p = Ppa {
            channel: 99,
            chip: 0,
            block: 0,
            page: 0,
        };
        assert_eq!(
            a.program(p, 0, page_data(&cfg, 0)).unwrap_err(),
            NandError::BadAddress(p)
        );
    }

    #[test]
    fn erase_drops_data_and_counts_wear() {
        let cfg = FlashConfig::tiny();
        let mut a = arr();
        let p = Ppa {
            channel: 0,
            chip: 0,
            block: 1,
            page: 0,
        };
        a.program(p, 7, page_data(&cfg, 7)).unwrap();
        a.erase(0, 0, 1).unwrap();
        assert!(matches!(a.read(p), Err(NandError::ReadUnwritten(_))));
        assert_eq!(a.erases_total(), 1);
        assert_eq!(a.wear_spread(), (0, 1));
    }
}
