//! Flash device geometry and timing parameters.

use smartssd_sim::DeviceFaultPlan;

/// Geometry and timing of the emulated SSD.
///
/// Defaults are calibrated so that the assembled device reproduces the
/// paper's Table 2: ~550 MB/s external sequential read (set by the host
/// interface, see the host crate) and ~1,560 MB/s internal sequential read
/// (set here by the shared DRAM bus).
#[derive(Debug, Clone)]
pub struct FlashConfig {
    /// Number of independent flash channels.
    pub channels: usize,
    /// NAND dies per channel (chip-level interleaving depth).
    pub chips_per_channel: usize,
    /// Erase blocks per chip.
    pub blocks_per_chip: usize,
    /// Pages per erase block.
    pub pages_per_block: usize,
    /// Page size in bytes (matches the host's 8 KB database page).
    pub page_size: usize,
    /// Fraction of physical capacity hidden from the logical space for GC
    /// headroom (overprovisioning).
    pub overprovision: f64,
    /// Cell-to-register read time, nanoseconds (tR).
    pub t_read_ns: u64,
    /// Program time, nanoseconds (tPROG).
    pub t_program_ns: u64,
    /// Block erase time, nanoseconds (tBERS).
    pub t_erase_ns: u64,
    /// Per-channel register<->controller transfer bandwidth, bytes/s.
    pub channel_bw: u64,
    /// Shared controller-DRAM DMA bandwidth, bytes/s. All channels contend
    /// for this single bus (paper Section 2 / Section 4.2).
    pub dram_bw: u64,
    /// Per-transfer DMA setup latency on the DRAM bus, nanoseconds.
    pub dram_latency_ns: u64,
    /// ECC decode latency per page read, nanoseconds.
    pub ecc_ns: u64,
    /// Deterministic injected rate of correctable read errors (per read,
    /// out of 2^32). Each costs a re-read of the page. 0 disables.
    pub ecc_retry_rate: u32,
    /// Deterministic injected rate of uncorrectable read errors (per read,
    /// out of 2^32). Surfaced to the caller as [`crate::FlashError::Uncorrectable`].
    pub ecc_fail_rate: u32,
    /// Deterministic injected rate of *silent* corruption (per read, out of
    /// 2^32): the returned payload has a flipped byte and no error is
    /// raised — an ECC escape. Consumers detect it via the page checksum
    /// and re-read. 0 disables.
    pub silent_corruption_rate: u32,
    /// GC trigger: collect when a chip's free blocks drop below this count.
    pub gc_low_water_blocks: usize,
    /// Scripted gray-failure plan for this device's flash path: slowdown
    /// windows scale cell/channel/DRAM occupancy, ECC bursts charge
    /// deterministic correctable re-reads over an LBA extent. Empty by
    /// default — no timing change, no extra draws, goldens untouched.
    /// (Scripted crashes live on the device config, not here.)
    pub fault_plan: DeviceFaultPlan,
}

impl FlashConfig {
    /// Total physical pages.
    pub fn physical_pages(&self) -> u64 {
        (self.channels * self.chips_per_channel * self.blocks_per_chip * self.pages_per_block)
            as u64
    }

    /// Logical pages exposed after overprovisioning.
    pub fn logical_pages(&self) -> u64 {
        (self.physical_pages() as f64 * (1.0 - self.overprovision)) as u64
    }

    /// Logical capacity in bytes.
    pub fn logical_bytes(&self) -> u64 {
        self.logical_pages() * self.page_size as u64
    }

    /// A small geometry for unit tests: fast to fill, quick to trigger GC.
    pub fn tiny() -> Self {
        Self {
            channels: 2,
            chips_per_channel: 2,
            blocks_per_chip: 8,
            pages_per_block: 8,
            page_size: 512,
            overprovision: 0.25,
            gc_low_water_blocks: 2,
            ..Self::default()
        }
    }

    /// Validates internal consistency; panics with a clear message on
    /// nonsensical geometry.
    pub fn validate(&self) {
        assert!(self.channels >= 1, "need at least one channel");
        assert!(self.chips_per_channel >= 1, "need at least one chip");
        assert!(
            self.blocks_per_chip >= 2,
            "need at least two blocks per chip"
        );
        assert!(
            self.pages_per_block >= 1,
            "need at least one page per block"
        );
        assert!(self.page_size >= 16, "page size too small");
        assert!(
            (0.0..0.9).contains(&self.overprovision),
            "overprovision must be in [0, 0.9)"
        );
        assert!(
            self.gc_low_water_blocks >= 1,
            "GC low-water mark must be >= 1"
        );
        assert!(
            self.gc_low_water_blocks < self.blocks_per_chip,
            "GC low-water mark must leave usable blocks"
        );
        assert!(self.channel_bw > 0 && self.dram_bw > 0);
    }
}

impl Default for FlashConfig {
    /// Paper-calibrated device: 8 channels x 4 chips; DRAM bus at 1,600 MB/s
    /// yields ~1,560 MB/s achieved internal sequential read (Table 2) after
    /// DMA setup overheads.
    fn default() -> Self {
        Self {
            channels: 8,
            chips_per_channel: 4,
            blocks_per_chip: 256,
            pages_per_block: 64,
            page_size: 8192,
            overprovision: 0.125,
            t_read_ns: 50_000,       // 50 us tR (MLC-era NAND)
            t_program_ns: 600_000,   // 600 us tPROG
            t_erase_ns: 3_000_000,   // 3 ms tBERS
            channel_bw: 400_000_000, // 400 MB/s ONFI-style channel
            dram_bw: 1_600_000_000,  // 1.6 GB/s shared DRAM DMA bus
            dram_latency_ns: 120,
            ecc_ns: 3_000,
            ecc_retry_rate: 0,
            ecc_fail_rate: 0,
            silent_corruption_rate: 0,
            gc_low_water_blocks: 4,
            fault_plan: DeviceFaultPlan::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_capacity_is_plausible() {
        let c = FlashConfig::default();
        c.validate();
        // 8 * 4 * 256 * 64 pages * 8 KB = 4 GiB physical.
        assert_eq!(c.physical_pages(), 524_288);
        assert!(c.logical_pages() < c.physical_pages());
        assert!(c.logical_bytes() > 3_500_000_000);
    }

    #[test]
    fn tiny_geometry_valid() {
        let c = FlashConfig::tiny();
        c.validate();
        assert_eq!(c.physical_pages(), 2 * 2 * 8 * 8);
    }

    #[test]
    #[should_panic(expected = "overprovision")]
    fn bad_overprovision_rejected() {
        let c = FlashConfig {
            overprovision: 0.95,
            ..FlashConfig::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "low-water")]
    fn bad_gc_water_mark_rejected() {
        let c = FlashConfig {
            gc_low_water_blocks: 0,
            ..FlashConfig::default()
        };
        c.validate();
    }
}
