//! Model-based property tests of the flash device: an arbitrary sequence of
//! writes, overwrites, trims, and reads must behave exactly like a plain
//! `HashMap<lba, payload>`, regardless of how the FTL shuffles physical
//! placement or when garbage collection runs.

use bytes::Bytes;
use proptest::prelude::*;
use smartssd_flash::{FlashConfig, FlashError, FlashSsd};
use smartssd_sim::SimTime;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Write(u64, u8),
    Trim(u64),
    Read(u64),
}

fn arb_op(logical: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0..logical, any::<u8>()).prop_map(|(l, v)| Op::Write(l, v)),
        1 => (0..logical).prop_map(Op::Trim),
        2 => (0..logical).prop_map(Op::Read),
    ]
}

fn payload(cfg: &FlashConfig, tag: u8) -> Bytes {
    Bytes::from(vec![tag; cfg.page_size])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn device_behaves_like_a_map(ops in prop::collection::vec(arb_op(96), 1..600)) {
        let cfg = FlashConfig::tiny();
        let logical = {
            let ssd = FlashSsd::new(cfg.clone());
            ssd.logical_pages()
        };
        prop_assume!(logical >= 96);
        let mut ssd = FlashSsd::new(cfg.clone());
        let mut model: HashMap<u64, u8> = HashMap::new();
        for op in ops {
            match op {
                Op::Write(lba, v) => {
                    ssd.write(lba, payload(&cfg, v), SimTime::ZERO).unwrap();
                    model.insert(lba, v);
                }
                Op::Trim(lba) => {
                    ssd.trim(lba).unwrap();
                    model.remove(&lba);
                }
                Op::Read(lba) => match model.get(&lba) {
                    Some(&v) => {
                        let (data, _) = ssd.read(lba, SimTime::ZERO).unwrap();
                        prop_assert!(data.iter().all(|&b| b == v), "lba {lba}");
                    }
                    None => {
                        prop_assert_eq!(
                            ssd.read(lba, SimTime::ZERO).unwrap_err(),
                            FlashError::Unmapped(lba)
                        );
                    }
                },
            }
        }
        // Final full sweep: everything the model holds must be readable.
        for (&lba, &v) in &model {
            let (data, _) = ssd.read(lba, SimTime::ZERO).unwrap();
            prop_assert!(data.iter().all(|&b| b == v));
        }
    }

    #[test]
    fn gc_never_loses_data_under_pressure(
        seed_ops in prop::collection::vec((0u64..1000, any::<u8>()), 200..500)
    ) {
        // Hammer a small device close to capacity; GC must relocate
        // correctly every time.
        let cfg = FlashConfig::tiny();
        let mut ssd = FlashSsd::new(cfg.clone());
        let logical = ssd.logical_pages();
        let mut model: HashMap<u64, u8> = HashMap::new();
        for (raw, v) in seed_ops {
            let lba = raw % logical;
            ssd.write(lba, payload(&cfg, v), SimTime::ZERO).unwrap();
            model.insert(lba, v);
        }
        for (&lba, &v) in &model {
            let (data, _) = ssd.read(lba, SimTime::ZERO).unwrap();
            prop_assert!(data.iter().all(|&b| b == v));
        }
        // Write amplification is finite and >= 1.
        let wa = ssd.stats().write_amplification();
        prop_assert!((1.0..10.0).contains(&wa), "write amplification {wa}");
    }

    #[test]
    fn timing_is_monotone_per_resource(lbas in prop::collection::vec(0u64..64, 1..200)) {
        // Issuing reads in order at time zero: each read's completion is
        // positive, and total busy time only grows.
        let cfg = FlashConfig::tiny();
        let mut ssd = FlashSsd::new(cfg.clone());
        for lba in 0..64u64 {
            ssd.write(lba, payload(&cfg, lba as u8), SimTime::ZERO).unwrap();
        }
        ssd.reset_timing();
        let mut busy_prev = 0;
        for lba in lbas {
            let (_, iv) = ssd.read(lba, SimTime::ZERO).unwrap();
            prop_assert!(iv.end > iv.start);
            let busy = ssd.dram_busy_ns();
            prop_assert!(busy >= busy_prev);
            busy_prev = busy;
        }
    }
}
