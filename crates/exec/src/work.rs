//! Work receipts and cycle cost tables.

use smartssd_storage::expr::EvalCounts;

/// A receipt of the primitive operations an operator kernel performed.
///
/// Kernels accumulate counts; the executing environment (device or host)
/// prices them with its [`CostTable`]. Keeping counting separate from
/// pricing is what lets one functional execution drive both the Smart SSD
/// and the host baselines of every experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkCounts {
    /// Pages visited (header parse, latch/DMA bookkeeping).
    pub pages: u64,
    /// Tuples visited on NSM pages (slot-directory walk + record decode).
    pub tuples_nsm: u64,
    /// Tuples visited on PAX pages (columnar stride, far cheaper each).
    pub tuples_pax: u64,
    /// Column values actually read.
    pub values: u64,
    /// Predicate atoms actually evaluated (post short-circuit).
    pub pred_atoms: u64,
    /// Expression nodes actually evaluated.
    pub expr_nodes: u64,
    /// Aggregate accumulator updates.
    pub agg_updates: u64,
    /// Hash-table insertions (join build side).
    pub hash_builds: u64,
    /// Hash-table probes (join probe side).
    pub hash_probes: u64,
    /// Output tuples materialized.
    pub out_tuples: u64,
    /// Output bytes materialized.
    pub out_bytes: u64,
}

impl WorkCounts {
    /// Merges another receipt into this one.
    pub fn absorb(&mut self, other: &WorkCounts) {
        self.pages += other.pages;
        self.tuples_nsm += other.tuples_nsm;
        self.tuples_pax += other.tuples_pax;
        self.values += other.values;
        self.pred_atoms += other.pred_atoms;
        self.expr_nodes += other.expr_nodes;
        self.agg_updates += other.agg_updates;
        self.hash_builds += other.hash_builds;
        self.hash_probes += other.hash_probes;
        self.out_tuples += other.out_tuples;
        self.out_bytes += other.out_bytes;
    }

    /// Folds in counts from the expression evaluator.
    pub fn absorb_eval(&mut self, e: EvalCounts) {
        self.values += e.values;
        self.pred_atoms += e.atoms;
        self.expr_nodes += e.nodes;
    }

    /// Total tuples visited, both layouts.
    pub fn tuples(&self) -> u64 {
        self.tuples_nsm + self.tuples_pax
    }
}

/// Cycle prices for each primitive operation.
///
/// Two calibrated instances exist: [`CostTable::device`] for the SSD's
/// embedded processor (in-order, low clock, slow DRAM — high per-tuple and
/// per-probe costs) and [`CostTable::host`] for the Xeon running the DBMS
/// scan path (fast core, but each tuple passes through buffer-pool, latch,
/// and iterator machinery — the paper's SQL Server path). Constants were
/// tuned so the assembled system reproduces the paper's end-to-end ratios
/// (Figures 3/5/7); see EXPERIMENTS.md.
#[derive(Debug, Clone, Copy)]
pub struct CostTable {
    /// Per page visited.
    pub page: u64,
    /// Per tuple visited on an NSM page.
    pub tuple_nsm: u64,
    /// Per tuple visited on a PAX page.
    pub tuple_pax: u64,
    /// Per column value read.
    pub value: u64,
    /// Per predicate atom evaluated.
    pub pred_atom: u64,
    /// Per expression node evaluated.
    pub expr_node: u64,
    /// Per aggregate update.
    pub agg_update: u64,
    /// Per hash-table insert.
    pub hash_build: u64,
    /// Per hash-table probe.
    pub hash_probe: u64,
    /// Per output tuple materialized.
    pub out_tuple: u64,
    /// Per output byte materialized (copy cost). Priced in tenths of a
    /// cycle to allow sub-cycle-per-byte copies on the host.
    pub out_byte_tenths: u64,
}

impl CostTable {
    /// The Smart SSD's embedded processor. Low clock, in-order, small
    /// caches; NSM tuple decode (slot walk + record offsets) costs ~2x a
    /// PAX columnar stride, and hash probes pay controller-DRAM latency.
    pub const fn device() -> Self {
        Self {
            page: 400,
            tuple_nsm: 160,
            tuple_pax: 91,
            value: 6,
            pred_atom: 8,
            expr_node: 6,
            agg_update: 8,
            hash_build: 150,
            hash_probe: 68,
            out_tuple: 160,
            out_byte_tenths: 10,
        }
    }

    /// The host DBMS scan path (single thread of a 2.26 GHz Xeon running
    /// the paper's special-cased SQL Server operators). Per-tuple costs are
    /// dominated by buffer-pool/iterator overhead rather than raw decode.
    pub const fn host() -> Self {
        Self {
            page: 900,
            tuple_nsm: 640,
            tuple_pax: 660,
            value: 10,
            pred_atom: 12,
            expr_node: 8,
            agg_update: 10,
            hash_build: 90,
            hash_probe: 60,
            out_tuple: 60,
            out_byte_tenths: 5,
        }
    }

    /// Prices a work receipt in CPU cycles.
    pub fn cycles(&self, w: &WorkCounts) -> u64 {
        self.page * w.pages
            + self.tuple_nsm * w.tuples_nsm
            + self.tuple_pax * w.tuples_pax
            + self.value * w.values
            + self.pred_atom * w.pred_atoms
            + self.expr_node * w.expr_nodes
            + self.agg_update * w.agg_updates
            + self.hash_build * w.hash_builds
            + self.hash_probe * w.hash_probes
            + self.out_tuple * w.out_tuples
            + self.out_byte_tenths * w.out_bytes / 10
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_fields() {
        let mut a = WorkCounts {
            pages: 1,
            tuples_nsm: 10,
            ..Default::default()
        };
        let b = WorkCounts {
            pages: 2,
            tuples_pax: 5,
            out_bytes: 100,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.pages, 3);
        assert_eq!(a.tuples(), 15);
        assert_eq!(a.out_bytes, 100);
    }

    #[test]
    fn absorb_eval_maps_fields() {
        let mut w = WorkCounts::default();
        w.absorb_eval(EvalCounts {
            atoms: 3,
            values: 4,
            nodes: 9,
        });
        assert_eq!(w.pred_atoms, 3);
        assert_eq!(w.values, 4);
        assert_eq!(w.expr_nodes, 9);
    }

    #[test]
    fn pricing_is_linear() {
        let t = CostTable::device();
        let w = WorkCounts {
            pages: 2,
            tuples_nsm: 3,
            out_bytes: 25,
            ..Default::default()
        };
        assert_eq!(
            t.cycles(&w),
            2 * t.page + 3 * t.tuple_nsm + t.out_byte_tenths * 25 / 10
        );
    }

    #[test]
    fn nsm_decode_costs_more_than_pax_on_device() {
        let t = CostTable::device();
        assert!(t.tuple_nsm > t.tuple_pax);
    }

    #[test]
    fn host_per_tuple_overhead_exceeds_device_decode() {
        // The paper's host path carries DBMS machinery per tuple; its
        // per-tuple constant is higher even though the clock is faster.
        assert!(CostTable::host().tuple_nsm > CostTable::device().tuple_nsm);
    }
}
