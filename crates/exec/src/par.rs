//! Deterministic fork/join over page batches.
//!
//! Kernel execution is split into two phases by the engines: page reads
//! stay serial (device state mutates in LBA order, so error injection and
//! timing draws are unaffected), then the pure per-page kernel work fans
//! out here. Results come back in input order, and the caller replays CPU
//! charges and output merges in that order — so parallel execution is
//! bit-identical to the serial loop, just faster in wall-clock terms.

/// Batch size below which [`parallel_map`] runs serially: thread spawn
/// overhead dominates per-page kernel work for small tables.
const MIN_PARALLEL_ITEMS: usize = 32;

/// Whether [`parallel_map`] would run `items.len()` items serially. Callers
/// with a cheaper single-threaded formulation (e.g. folding pages straight
/// into one accumulator instead of allocating per-page partials) can branch
/// on this without duplicating the threshold.
pub fn runs_serial(len: usize, workers: usize) -> bool {
    workers.clamp(1, len.max(1)) == 1 || len < MIN_PARALLEL_ITEMS
}

/// Maps `items` through `f` on scoped worker threads, returning results in
/// input order. Falls back to a plain serial map for small batches, where
/// thread spawn overhead would dominate.
pub fn parallel_map<T, U, F>(items: &[T], workers: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = workers.clamp(1, items.len().max(1));
    if workers == 1 || items.len() < MIN_PARALLEL_ITEMS {
        return items.iter().map(&f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| scope.spawn(move || c.iter().map(f).collect::<Vec<U>>()))
            .collect();
        let mut out = Vec::with_capacity(items.len());
        for h in handles {
            out.extend(h.join().expect("kernel worker thread panicked"));
        }
        out
    })
}

/// Worker count for kernel fan-out: the machine's parallelism, capped so
/// a wide simulation sweep doesn't oversubscribe the host.
///
/// Queried once and cached: `available_parallelism` re-reads cgroup limits
/// from the filesystem on every call (microseconds of syscalls), which is
/// far too slow for a per-operator hot path.
pub fn default_workers() -> usize {
    static WORKERS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *WORKERS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(&items, 4, |&x| x * 3);
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn small_batches_run_inline() {
        let items = [1, 2, 3];
        assert_eq!(parallel_map(&items, 8, |&x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let items: [u32; 0] = [];
        assert!(parallel_map(&items, 4, |&x| x).is_empty());
    }
}
