//! Tuple-at-a-time reference kernels.
//!
//! These are the pre-vectorization implementations, kept verbatim: one
//! expression-tree walk per row via `eval_counted`, and a `BTreeMap`-based
//! group accumulator. They exist so the vectorized kernels in
//! [`crate::kernels`] can be differentially tested (results *and*
//! [`WorkCounts`] receipts must match exactly) and benchmarked against the
//! row-at-a-time baseline. Production paths never call them.

use crate::kernels::{count_tuples, page_reader};
use crate::spec::{GroupAggSpec, ScanAggSpec, ScanSpec};
use crate::work::WorkCounts;
use smartssd_storage::expr::{AggState, EvalCounts};
use smartssd_storage::{PageBuf, RowAccessor, Schema, Tuple};
use std::collections::BTreeMap;

/// Reference group accumulator: encoded key -> one state per aggregate.
pub type RefGroupTable = BTreeMap<Vec<u8>, Vec<AggState>>;

/// Row-at-a-time filter + project (reference for [`crate::scan_page`]).
pub fn scan_page_rowwise(
    page: &PageBuf,
    schema: &Schema,
    spec: &ScanSpec,
    out: &mut Vec<Tuple>,
    w: &mut WorkCounts,
) -> usize {
    let r = page_reader(page, schema);
    w.pages += 1;
    count_tuples(w, r.layout(), r.num_rows() as u64);
    let mut qualifying = 0;
    for row in 0..r.num_rows() {
        let mut ev = EvalCounts::default();
        let pass = spec.pred.eval_counted(&r, row, &mut ev);
        w.absorb_eval(ev);
        if !pass {
            continue;
        }
        qualifying += 1;
        let mut t = Tuple::with_capacity(spec.project.len());
        let mut bytes = 0u64;
        for &c in &spec.project {
            bytes += schema.column(c).ty.width() as u64;
            t.push(r.datum_at(row, c));
        }
        w.values += spec.project.len() as u64;
        w.out_tuples += 1;
        w.out_bytes += bytes;
        out.push(t);
    }
    qualifying
}

/// Row-at-a-time filter + aggregate (reference for [`crate::scan_agg_page`]).
pub fn scan_agg_page_rowwise(
    page: &PageBuf,
    schema: &Schema,
    spec: &ScanAggSpec,
    states: &mut [AggState],
    w: &mut WorkCounts,
) {
    assert_eq!(states.len(), spec.aggs.len(), "one state per aggregate");
    let r = page_reader(page, schema);
    w.pages += 1;
    count_tuples(w, r.layout(), r.num_rows() as u64);
    for row in 0..r.num_rows() {
        let mut ev = EvalCounts::default();
        let pass = spec.pred.eval_counted(&r, row, &mut ev);
        w.absorb_eval(ev);
        if !pass {
            continue;
        }
        for (agg, state) in spec.aggs.iter().zip(states.iter_mut()) {
            let mut ev = EvalCounts::default();
            let v = agg.expr.eval_counted(&r, row, &mut ev);
            w.absorb_eval(ev);
            state.update(v);
            w.agg_updates += 1;
        }
    }
}

/// Row-at-a-time filter + group + aggregate (reference for
/// [`crate::scan_group_agg_page`]).
pub fn scan_group_agg_page_rowwise(
    page: &PageBuf,
    schema: &Schema,
    spec: &GroupAggSpec,
    acc: &mut RefGroupTable,
    w: &mut WorkCounts,
) {
    let r = page_reader(page, schema);
    w.pages += 1;
    count_tuples(w, r.layout(), r.num_rows() as u64);
    let key_width: usize = spec
        .group_by
        .iter()
        .map(|&c| schema.column(c).ty.width())
        .sum();
    for row in 0..r.num_rows() {
        let mut ev = EvalCounts::default();
        let pass = spec.pred.eval_counted(&r, row, &mut ev);
        w.absorb_eval(ev);
        if !pass {
            continue;
        }
        let mut key = Vec::with_capacity(key_width);
        for &c in &spec.group_by {
            key.extend_from_slice(r.field(row, c));
        }
        w.values += spec.group_by.len() as u64;
        w.hash_probes += 1;
        let states = acc
            .entry(key)
            .or_insert_with(|| spec.aggs.iter().map(|a| AggState::new(a.func)).collect());
        for (agg, state) in spec.aggs.iter().zip(states.iter_mut()) {
            let mut ev = EvalCounts::default();
            let v = agg.expr.eval_counted(&r, row, &mut ev);
            w.absorb_eval(ev);
            state.update(v);
            w.agg_updates += 1;
        }
    }
}

/// Materializes a [`RefGroupTable`] with the same decoding rules as
/// [`crate::group_table_rows`] (BTreeMap iteration is already key-sorted).
pub fn ref_group_table_rows(acc: &RefGroupTable, key_schema: &Schema) -> Vec<Tuple> {
    acc.iter()
        .map(|(key, states)| {
            let mut row = Tuple::with_capacity(key_schema.len() + states.len());
            for (i, col) in key_schema.columns().iter().enumerate() {
                let off = key_schema.offset(i);
                row.push(smartssd_storage::tuple::decode_field(
                    col.ty,
                    &key[off..off + col.ty.width()],
                ));
            }
            for st in states {
                let v = st.finish();
                row.push(smartssd_storage::Datum::I64(
                    v.clamp(i64::MIN as i128, i64::MAX as i128) as i64,
                ));
            }
            row
        })
        .collect()
}
