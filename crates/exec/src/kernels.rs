//! Page-level scan and aggregation kernels.
//!
//! Kernels are vectorized: each page is filtered once into a
//! [`SelectionVector`] by `smartssd_storage::vector` (columnar loops, one
//! tree walk per page instead of per row), then projection/aggregation run
//! over the surviving row indices. The [`WorkCounts`] receipts are
//! bit-identical to the tuple-at-a-time reference kernels (kept in
//! [`crate::reference`] for differential testing), so simulated timings are
//! unchanged — only host wall-clock improves.

use crate::spec::{GroupAggSpec, ScanAggSpec, ScanSpec};
use crate::work::WorkCounts;
use smartssd_storage::expr::{AggState, EvalCounts};
use smartssd_storage::nsm::NsmReader;
use smartssd_storage::pax::PaxReader;
use smartssd_storage::vector::{eval_select, filter_select, SelectionVector};
use smartssd_storage::{Layout, PageBuf, RowAccessor, Schema, Tuple};

/// A layout-dispatched page reader.
pub enum AnyReader<'a> {
    /// NSM slotted-page view.
    Nsm(NsmReader<'a>),
    /// PAX columnar view.
    Pax(PaxReader<'a>),
}

impl<'a> AnyReader<'a> {
    /// Which layout this reader decodes (for per-layout tuple pricing).
    pub fn layout(&self) -> Layout {
        match self {
            AnyReader::Nsm(_) => Layout::Nsm,
            AnyReader::Pax(_) => Layout::Pax,
        }
    }
}

impl RowAccessor for AnyReader<'_> {
    fn schema(&self) -> &Schema {
        match self {
            AnyReader::Nsm(r) => r.schema(),
            AnyReader::Pax(r) => r.schema(),
        }
    }

    fn num_rows(&self) -> usize {
        match self {
            AnyReader::Nsm(r) => r.num_rows(),
            AnyReader::Pax(r) => r.num_rows(),
        }
    }

    #[inline]
    fn field(&self, row: usize, col: usize) -> &[u8] {
        match self {
            AnyReader::Nsm(r) => r.field(row, col),
            AnyReader::Pax(r) => r.field(row, col),
        }
    }

    fn gather_i64_into(&self, col: usize, rows: &[u32], out: &mut Vec<i64>) {
        // Dispatch the layout once per batch, not once per row, so the
        // readers' typed gather loops are reached.
        match self {
            AnyReader::Nsm(r) => r.gather_i64_into(col, rows, out),
            AnyReader::Pax(r) => r.gather_i64_into(col, rows, out),
        }
    }

    fn filter_i64_cmp(
        &self,
        col: usize,
        op: smartssd_storage::expr::CmpOp,
        lit: i64,
        flipped: bool,
        rows: &mut Vec<u32>,
    ) {
        match self {
            AnyReader::Nsm(r) => r.filter_i64_cmp(col, op, lit, flipped, rows),
            AnyReader::Pax(r) => r.filter_i64_cmp(col, op, lit, flipped, rows),
        }
    }
}

/// Opens a page with the reader matching its layout tag.
pub fn page_reader<'a>(page: &'a PageBuf, schema: &'a Schema) -> AnyReader<'a> {
    match page.layout() {
        Layout::Nsm => AnyReader::Nsm(NsmReader::new(page, schema)),
        Layout::Pax => AnyReader::Pax(PaxReader::new(page, schema)),
    }
}

/// Charges the per-tuple visit counts for `n` tuples of the given layout.
#[inline]
pub(crate) fn count_tuples(w: &mut WorkCounts, layout: Layout, n: u64) {
    match layout {
        Layout::Nsm => w.tuples_nsm += n,
        Layout::Pax => w.tuples_pax += n,
    }
}

/// Filter + project one page, appending qualifying projected tuples to
/// `out`. Returns the number of qualifying rows.
pub fn scan_page(
    page: &PageBuf,
    schema: &Schema,
    spec: &ScanSpec,
    out: &mut Vec<Tuple>,
    w: &mut WorkCounts,
) -> usize {
    let r = page_reader(page, schema);
    w.pages += 1;
    count_tuples(w, r.layout(), r.num_rows() as u64);
    let mut ev = EvalCounts::default();
    let mut sel = SelectionVector::with_all(r.num_rows());
    filter_select(&spec.pred, &r, &mut sel, &mut ev);
    w.absorb_eval(ev);
    let row_bytes: u64 = spec
        .project
        .iter()
        .map(|&c| schema.column(c).ty.width() as u64)
        .sum();
    out.reserve(sel.len());
    for &row in sel.rows() {
        let mut t = Tuple::with_capacity(spec.project.len());
        for &c in &spec.project {
            t.push(r.datum_at(row as usize, c));
        }
        out.push(t);
    }
    w.values += spec.project.len() as u64 * sel.len() as u64;
    w.out_tuples += sel.len() as u64;
    w.out_bytes += row_bytes * sel.len() as u64;
    sel.len()
}

/// Filter + aggregate one page, folding qualifying rows into `states`
/// (one state per `spec.aggs` entry).
pub fn scan_agg_page(
    page: &PageBuf,
    schema: &Schema,
    spec: &ScanAggSpec,
    states: &mut [AggState],
    w: &mut WorkCounts,
) {
    assert_eq!(states.len(), spec.aggs.len(), "one state per aggregate");
    let r = page_reader(page, schema);
    w.pages += 1;
    count_tuples(w, r.layout(), r.num_rows() as u64);
    let mut ev = EvalCounts::default();
    let mut sel = SelectionVector::with_all(r.num_rows());
    filter_select(&spec.pred, &r, &mut sel, &mut ev);
    let mut vals = Vec::new();
    for (agg, state) in spec.aggs.iter().zip(states.iter_mut()) {
        eval_select(&agg.expr, &r, sel.rows(), &mut vals, &mut ev);
        for &v in &vals {
            state.update(v);
        }
        w.agg_updates += sel.len() as u64;
    }
    w.absorb_eval(ev);
}

/// Accumulator for grouped aggregation: encoded group key (concatenated
/// fixed-width field bytes) -> one running state per aggregate.
///
/// Open-addressing hash table with linear probing. Keys (all the same
/// width within one table) are interned back-to-back in one byte arena and
/// aggregate states live in one contiguous array, so a group probe is a
/// hash of raw key bytes plus at most a few slot comparisons — no per-row
/// allocation and no tree walk. Output order stays deterministic:
/// [`group_table_rows`] sorts entries by key bytes, which for fixed-width
/// keys is exactly the order the previous `BTreeMap`-based table produced.
#[derive(Debug, Clone, Default)]
pub struct GroupTable {
    /// Probe table: entry index per slot, `u32::MAX` = empty. Power of two.
    slots: Vec<u32>,
    /// Interned keys, `key_width` bytes per entry.
    key_data: Vec<u8>,
    /// Aggregate states, `num_aggs` per entry.
    states: Vec<AggState>,
    key_width: usize,
    num_aggs: usize,
    len: usize,
}

const EMPTY_SLOT: u32 = u32::MAX;

impl GroupTable {
    /// An empty table; key width and aggregate count are fixed by the
    /// first insertion.
    pub fn new() -> Self {
        GroupTable::default()
    }

    /// Number of distinct groups.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table has no groups.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Width in bytes of the interned keys (0 until the first insertion).
    pub fn key_width(&self) -> usize {
        self.key_width
    }

    /// FNV-1a over the raw key bytes.
    #[inline]
    fn hash_key(key: &[u8]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in key {
            h ^= b as u64;
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
        h
    }

    #[inline]
    fn entry_key(&self, e: usize) -> &[u8] {
        &self.key_data[e * self.key_width..(e + 1) * self.key_width]
    }

    fn entry_states(&self, e: usize) -> &[AggState] {
        &self.states[e * self.num_aggs..(e + 1) * self.num_aggs]
    }

    /// Slot holding `key`'s entry, or the empty slot where it belongs.
    #[inline]
    fn slot_for(&self, key: &[u8]) -> usize {
        let mask = self.slots.len() - 1;
        let mut i = Self::hash_key(key) as usize & mask;
        loop {
            let e = self.slots[i];
            if e == EMPTY_SLOT || self.entry_key(e as usize) == key {
                return i;
            }
            i = (i + 1) & mask;
        }
    }

    /// Returns the entry index for `key`, inserting a fresh entry (states
    /// from `new_states`) if absent. The bool is true on insertion.
    pub fn upsert_with(
        &mut self,
        key: &[u8],
        new_states: impl FnOnce() -> Vec<AggState>,
    ) -> (usize, bool) {
        if self.slots.is_empty() {
            self.key_width = key.len();
            self.slots = vec![EMPTY_SLOT; 16];
        }
        debug_assert_eq!(key.len(), self.key_width, "uniform key width per table");
        // Keep load factor at or below ~0.7.
        if (self.len + 1) * 10 > self.slots.len() * 7 {
            self.grow();
        }
        let s = self.slot_for(key);
        if self.slots[s] != EMPTY_SLOT {
            return (self.slots[s] as usize, false);
        }
        let e = self.len;
        self.slots[s] = e as u32;
        self.key_data.extend_from_slice(key);
        let st = new_states();
        if e == 0 {
            self.num_aggs = st.len();
        } else {
            debug_assert_eq!(st.len(), self.num_aggs, "uniform aggregate count");
        }
        self.states.extend(st);
        self.len += 1;
        (e, true)
    }

    /// Mutable access to entry `e`'s state for aggregate `agg`.
    #[inline]
    pub fn state_mut(&mut self, e: usize, agg: usize) -> &mut AggState {
        &mut self.states[e * self.num_aggs + agg]
    }

    fn grow(&mut self) {
        let cap = (self.slots.len() * 2).max(16);
        self.slots.clear();
        self.slots.resize(cap, EMPTY_SLOT);
        let mask = cap - 1;
        for e in 0..self.len {
            let mut i = Self::hash_key(self.entry_key(e)) as usize & mask;
            while self.slots[i] != EMPTY_SLOT {
                i = (i + 1) & mask;
            }
            self.slots[i] = e as u32;
        }
    }

    /// Entry indices in ascending key-byte order (the deterministic
    /// output order).
    fn sorted_entries(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.len).collect();
        order.sort_unstable_by_key(|&e| self.entry_key(e));
        order
    }
}

/// Filter + group + aggregate one page into `acc`.
pub fn scan_group_agg_page(
    page: &PageBuf,
    schema: &Schema,
    spec: &GroupAggSpec,
    acc: &mut GroupTable,
    w: &mut WorkCounts,
) {
    let r = page_reader(page, schema);
    w.pages += 1;
    count_tuples(w, r.layout(), r.num_rows() as u64);
    let mut ev = EvalCounts::default();
    let mut sel = SelectionVector::with_all(r.num_rows());
    filter_select(&spec.pred, &r, &mut sel, &mut ev);
    let key_width: usize = spec
        .group_by
        .iter()
        .map(|&c| schema.column(c).ty.width())
        .sum();
    // Build all keys column-wise into one buffer (layout dispatch and
    // column metadata hoisted out of the row loop), then probe per row.
    let keys = fill_keys(&r, &spec.group_by, schema, sel.rows(), key_width);
    let mut entries: Vec<u32> = Vec::with_capacity(sel.len());
    if key_width == 0 {
        // Degenerate (unvalidated) grouping: every row shares the empty key.
        for _ in 0..sel.len() {
            let (e, _) = acc.upsert_with(&[], || {
                spec.aggs.iter().map(|a| AggState::new(a.func)).collect()
            });
            entries.push(e as u32);
        }
    } else {
        for key in keys.chunks_exact(key_width) {
            let (e, _) = acc.upsert_with(key, || {
                spec.aggs.iter().map(|a| AggState::new(a.func)).collect()
            });
            entries.push(e as u32);
        }
    }
    w.values += spec.group_by.len() as u64 * sel.len() as u64;
    w.hash_probes += sel.len() as u64; // group lookup costs like a hash probe
    let mut vals = Vec::new();
    for (ai, agg) in spec.aggs.iter().enumerate() {
        eval_select(&agg.expr, &r, sel.rows(), &mut vals, &mut ev);
        for (&e, &v) in entries.iter().zip(&vals) {
            acc.state_mut(e as usize, ai).update(v);
        }
        w.agg_updates += sel.len() as u64;
    }
    w.absorb_eval(ev);
}

/// Builds the concatenated group keys for `rows` column-wise into one
/// buffer (layout dispatch and per-column metadata hoisted out of the row
/// loop). Output is `rows.len()` keys of `key_width` bytes each, byte-equal
/// to concatenating `field(row, col)` over `group_by`.
fn fill_keys(
    r: &AnyReader<'_>,
    group_by: &[usize],
    schema: &Schema,
    rows: &[u32],
    key_width: usize,
) -> Vec<u8> {
    let mut buf = vec![0u8; rows.len() * key_width];
    let mut off = 0usize;
    for &c in group_by {
        let w_c = schema.column(c).ty.width();
        match r {
            AnyReader::Pax(p) => {
                let mini = p.minipage(c);
                for (i, &row) in rows.iter().enumerate() {
                    buf[i * key_width + off..][..w_c]
                        .copy_from_slice(&mini[row as usize * w_c..][..w_c]);
                }
            }
            AnyReader::Nsm(nr) => {
                let col_off = schema.offset(c);
                for (i, &row) in rows.iter().enumerate() {
                    let rec = nr.record(row as usize);
                    buf[i * key_width + off..][..w_c].copy_from_slice(&rec[col_off..col_off + w_c]);
                }
            }
        }
        off += w_c;
    }
    buf
}

/// Approximate resident bytes of a group table (memory-grant accounting on
/// the device). Same per-group formula as the previous map-based table.
pub fn group_table_memory_bytes(acc: &GroupTable, num_aggs: usize) -> u64 {
    acc.len() as u64 * (acc.key_width() as u64 + num_aggs as u64 * 24 + 48)
}

/// Materializes a group table as output rows: grouping columns (decoded
/// from the key bytes) followed by each aggregate's final value as `Int64`
/// (saturating; aggregates that genuinely need 128 bits should stay
/// scalar, where partials travel as `AggState`).
pub fn group_table_rows(acc: &GroupTable, key_schema: &Schema) -> Vec<Tuple> {
    acc.sorted_entries()
        .into_iter()
        .map(|e| {
            let key = acc.entry_key(e);
            let states = acc.entry_states(e);
            let mut row = Tuple::with_capacity(key_schema.len() + states.len());
            for (i, col) in key_schema.columns().iter().enumerate() {
                let off = key_schema.offset(i);
                row.push(smartssd_storage::tuple::decode_field(
                    col.ty,
                    &key[off..off + col.ty.width()],
                ));
            }
            for st in states {
                let v = st.finish();
                row.push(smartssd_storage::Datum::I64(
                    v.clamp(i64::MIN as i128, i64::MAX as i128) as i64,
                ));
            }
            row
        })
        .collect()
}

/// Merges one group table into another (host-side merge of device
/// partials, or array gather).
pub fn merge_group_tables(into: &mut GroupTable, from: GroupTable) {
    for e in 0..from.len() {
        let src = from.entry_states(e);
        let (entry, inserted) = into.upsert_with(from.entry_key(e), || src.to_vec());
        if !inserted {
            for (i, b) in src.iter().enumerate() {
                into.state_mut(entry, i).merge(b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScanSpec;
    use smartssd_storage::expr::{AggFunc, AggSpec, CmpOp, Expr, Pred};
    use smartssd_storage::{DataType, Datum, TableBuilder};
    use std::sync::Arc;

    fn table(layout: Layout) -> smartssd_storage::TableImage {
        let s = Schema::from_pairs(&[("k", DataType::Int32), ("v", DataType::Int64)]);
        let mut b = TableBuilder::new("t", Arc::clone(&s), layout);
        b.extend((0..100).map(|k| vec![Datum::I32(k), Datum::I64(k as i64 * 2)] as Tuple));
        b.finish()
    }

    #[test]
    fn scan_filters_and_projects_both_layouts() {
        for layout in [Layout::Nsm, Layout::Pax] {
            let img = table(layout);
            let spec = ScanSpec {
                pred: Pred::Cmp(CmpOp::Lt, Expr::col(0), Expr::lit(10)),
                project: vec![1],
            };
            let mut out = Vec::new();
            let mut w = WorkCounts::default();
            for p in img.pages() {
                scan_page(p, img.schema(), &spec, &mut out, &mut w);
            }
            assert_eq!(out.len(), 10);
            assert_eq!(out[3], vec![Datum::I64(6)]);
            assert_eq!(w.tuples(), 100);
            assert_eq!(w.out_tuples, 10);
            assert_eq!(w.out_bytes, 80);
            match layout {
                Layout::Nsm => assert_eq!(w.tuples_nsm, 100),
                Layout::Pax => assert_eq!(w.tuples_pax, 100),
            }
        }
    }

    #[test]
    fn agg_kernel_matches_manual_sum() {
        let img = table(Layout::Pax);
        let spec = ScanAggSpec {
            pred: Pred::Cmp(CmpOp::Ge, Expr::col(0), Expr::lit(50)),
            aggs: vec![
                AggSpec::sum(Expr::col(1)),
                AggSpec::count(),
                AggSpec::min(Expr::col(0)),
                AggSpec::max(Expr::col(0)),
            ],
        };
        let mut states: Vec<AggState> = spec.aggs.iter().map(|a| AggState::new(a.func)).collect();
        let mut w = WorkCounts::default();
        for p in img.pages() {
            scan_agg_page(p, img.schema(), &spec, &mut states, &mut w);
        }
        let expected: i128 = (50..100).map(|k| k as i128 * 2).sum();
        assert_eq!(states[0].finish(), expected);
        assert_eq!(states[1].finish(), 50);
        assert_eq!(states[2].finish(), 50);
        assert_eq!(states[3].finish(), 99);
        assert_eq!(w.agg_updates, 200); // 4 aggs x 50 qualifying rows
        let _ = AggFunc::Sum;
    }

    #[test]
    fn empty_predicate_counts_no_outputs() {
        let img = table(Layout::Nsm);
        let spec = ScanSpec {
            pred: Pred::Const(false),
            project: vec![0],
        };
        let mut out = Vec::new();
        let mut w = WorkCounts::default();
        for p in img.pages() {
            scan_page(p, img.schema(), &spec, &mut out, &mut w);
        }
        assert!(out.is_empty());
        assert_eq!(w.out_tuples, 0);
        assert_eq!(w.tuples(), 100);
    }

    #[test]
    fn group_agg_matches_manual_grouping() {
        use crate::spec::GroupAggSpec;
        let s = Schema::from_pairs(&[("g", DataType::Int32), ("v", DataType::Int64)]);
        let mut b = TableBuilder::new("t", Arc::clone(&s), Layout::Pax);
        b.extend((0..1000).map(|k| vec![Datum::I32(k % 7), Datum::I64(k as i64)] as Tuple));
        let img = b.finish();
        let spec = GroupAggSpec {
            pred: Pred::Cmp(CmpOp::Ge, Expr::col(1), Expr::lit(100)),
            group_by: vec![0],
            aggs: vec![AggSpec::sum(Expr::col(1)), AggSpec::count()],
        };
        let mut acc = GroupTable::new();
        let mut w = WorkCounts::default();
        for p in img.pages() {
            scan_group_agg_page(p, img.schema(), &spec, &mut acc, &mut w);
        }
        assert_eq!(acc.len(), 7);
        let rows = group_table_rows(&acc, &spec.key_schema(&s));
        // Reference grouping.
        for row in &rows {
            let g = row[0].as_i64();
            let expected_sum: i64 = (100..1000).filter(|k| k % 7 == g).sum();
            let expected_cnt = (100..1000).filter(|k| k % 7 == g).count() as i64;
            assert_eq!(row[1].as_i64(), expected_sum, "group {g}");
            assert_eq!(row[2].as_i64(), expected_cnt, "group {g}");
        }
        assert!(group_table_memory_bytes(&acc, 2) > 0);
        assert!(w.hash_probes >= 900);
    }

    #[test]
    fn group_table_merge_equals_single_pass() {
        use crate::spec::GroupAggSpec;
        let s = Schema::from_pairs(&[("g", DataType::Int32), ("v", DataType::Int64)]);
        let rows: Vec<Tuple> = (0..500)
            .map(|k| vec![Datum::I32(k % 5), Datum::I64(k as i64 * 3)])
            .collect();
        let spec = GroupAggSpec {
            pred: Pred::Const(true),
            group_by: vec![0],
            aggs: vec![AggSpec::sum(Expr::col(1)), AggSpec::min(Expr::col(1))],
        };
        let build = |slice: &[Tuple]| {
            let mut b = TableBuilder::new("t", Arc::clone(&s), Layout::Nsm);
            b.extend(slice.iter().cloned());
            let img = b.finish();
            let mut acc = GroupTable::new();
            let mut w = WorkCounts::default();
            for p in img.pages() {
                scan_group_agg_page(p, img.schema(), &spec, &mut acc, &mut w);
            }
            acc
        };
        let whole = build(&rows);
        let mut merged = build(&rows[..200]);
        merge_group_tables(&mut merged, build(&rows[200..]));
        assert_eq!(
            group_table_rows(&whole, &spec.key_schema(&s)),
            group_table_rows(&merged, &spec.key_schema(&s))
        );
    }

    #[test]
    fn short_circuit_reduces_counted_atoms() {
        let img = table(Layout::Pax);
        // First conjunct fails for 90% of rows; with short-circuiting total
        // atoms << 2 * rows.
        let spec = ScanSpec {
            pred: Pred::And(vec![
                Pred::Cmp(CmpOp::Lt, Expr::col(0), Expr::lit(10)),
                Pred::Cmp(CmpOp::Lt, Expr::col(1), Expr::lit(1_000)),
            ]),
            project: vec![0],
        };
        let mut out = Vec::new();
        let mut w = WorkCounts::default();
        for p in img.pages() {
            scan_page(p, img.schema(), &spec, &mut out, &mut w);
        }
        assert_eq!(w.pred_atoms, 110); // 100 first atoms + 10 second atoms
    }
}
