//! Page-level scan and aggregation kernels.

use crate::spec::{GroupAggSpec, ScanAggSpec, ScanSpec};
use crate::work::WorkCounts;
use smartssd_storage::expr::{AggState, EvalCounts};
use smartssd_storage::nsm::NsmReader;
use smartssd_storage::pax::PaxReader;
use smartssd_storage::{Layout, PageBuf, RowAccessor, Schema, Tuple};
use std::collections::BTreeMap;

/// A layout-dispatched page reader.
pub enum AnyReader<'a> {
    /// NSM slotted-page view.
    Nsm(NsmReader<'a>),
    /// PAX columnar view.
    Pax(PaxReader<'a>),
}

impl<'a> AnyReader<'a> {
    /// Which layout this reader decodes (for per-layout tuple pricing).
    pub fn layout(&self) -> Layout {
        match self {
            AnyReader::Nsm(_) => Layout::Nsm,
            AnyReader::Pax(_) => Layout::Pax,
        }
    }
}

impl RowAccessor for AnyReader<'_> {
    fn schema(&self) -> &Schema {
        match self {
            AnyReader::Nsm(r) => r.schema(),
            AnyReader::Pax(r) => r.schema(),
        }
    }

    fn num_rows(&self) -> usize {
        match self {
            AnyReader::Nsm(r) => r.num_rows(),
            AnyReader::Pax(r) => r.num_rows(),
        }
    }

    #[inline]
    fn field(&self, row: usize, col: usize) -> &[u8] {
        match self {
            AnyReader::Nsm(r) => r.field(row, col),
            AnyReader::Pax(r) => r.field(row, col),
        }
    }
}

/// Opens a page with the reader matching its layout tag.
pub fn page_reader<'a>(page: &'a PageBuf, schema: &'a Schema) -> AnyReader<'a> {
    match page.layout() {
        Layout::Nsm => AnyReader::Nsm(NsmReader::new(page, schema)),
        Layout::Pax => AnyReader::Pax(PaxReader::new(page, schema)),
    }
}

/// Charges the per-tuple visit counts for `n` tuples of the given layout.
#[inline]
pub(crate) fn count_tuples(w: &mut WorkCounts, layout: Layout, n: u64) {
    match layout {
        Layout::Nsm => w.tuples_nsm += n,
        Layout::Pax => w.tuples_pax += n,
    }
}

/// Filter + project one page, appending qualifying projected tuples to
/// `out`. Returns the number of qualifying rows.
pub fn scan_page(
    page: &PageBuf,
    schema: &Schema,
    spec: &ScanSpec,
    out: &mut Vec<Tuple>,
    w: &mut WorkCounts,
) -> usize {
    let r = page_reader(page, schema);
    w.pages += 1;
    count_tuples(w, r.layout(), r.num_rows() as u64);
    let mut qualifying = 0;
    for row in 0..r.num_rows() {
        let mut ev = EvalCounts::default();
        let pass = spec.pred.eval_counted(&r, row, &mut ev);
        w.absorb_eval(ev);
        if !pass {
            continue;
        }
        qualifying += 1;
        let mut t = Tuple::with_capacity(spec.project.len());
        let mut bytes = 0u64;
        for &c in &spec.project {
            bytes += schema.column(c).ty.width() as u64;
            t.push(r.datum_at(row, c));
        }
        w.values += spec.project.len() as u64;
        w.out_tuples += 1;
        w.out_bytes += bytes;
        out.push(t);
    }
    qualifying
}

/// Filter + aggregate one page, folding qualifying rows into `states`
/// (one state per `spec.aggs` entry).
pub fn scan_agg_page(
    page: &PageBuf,
    schema: &Schema,
    spec: &ScanAggSpec,
    states: &mut [AggState],
    w: &mut WorkCounts,
) {
    assert_eq!(states.len(), spec.aggs.len(), "one state per aggregate");
    let r = page_reader(page, schema);
    w.pages += 1;
    count_tuples(w, r.layout(), r.num_rows() as u64);
    for row in 0..r.num_rows() {
        let mut ev = EvalCounts::default();
        let pass = spec.pred.eval_counted(&r, row, &mut ev);
        w.absorb_eval(ev);
        if !pass {
            continue;
        }
        for (agg, state) in spec.aggs.iter().zip(states.iter_mut()) {
            let mut ev = EvalCounts::default();
            let v = agg.expr.eval_counted(&r, row, &mut ev);
            w.absorb_eval(ev);
            state.update(v);
            w.agg_updates += 1;
        }
    }
}


/// Accumulator for grouped aggregation: encoded group key (concatenated
/// fixed-width field bytes) -> one state per aggregate.
///
/// A `BTreeMap` keeps group order deterministic, so device and host runs
/// emit identical row orders without a separate sort.
pub type GroupTable = BTreeMap<Vec<u8>, Vec<AggState>>;

/// Filter + group + aggregate one page into `acc`.
pub fn scan_group_agg_page(
    page: &PageBuf,
    schema: &Schema,
    spec: &GroupAggSpec,
    acc: &mut GroupTable,
    w: &mut WorkCounts,
) {
    let r = page_reader(page, schema);
    w.pages += 1;
    count_tuples(w, r.layout(), r.num_rows() as u64);
    let key_width: usize = spec
        .group_by
        .iter()
        .map(|&c| schema.column(c).ty.width())
        .sum();
    for row in 0..r.num_rows() {
        let mut ev = EvalCounts::default();
        let pass = spec.pred.eval_counted(&r, row, &mut ev);
        w.absorb_eval(ev);
        if !pass {
            continue;
        }
        let mut key = Vec::with_capacity(key_width);
        for &c in &spec.group_by {
            key.extend_from_slice(r.field(row, c));
        }
        w.values += spec.group_by.len() as u64;
        w.hash_probes += 1; // group lookup costs like a hash probe
        let states = acc
            .entry(key)
            .or_insert_with(|| spec.aggs.iter().map(|a| AggState::new(a.func)).collect());
        for (agg, state) in spec.aggs.iter().zip(states.iter_mut()) {
            let mut ev = EvalCounts::default();
            let v = agg.expr.eval_counted(&r, row, &mut ev);
            w.absorb_eval(ev);
            state.update(v);
            w.agg_updates += 1;
        }
    }
}

/// Approximate resident bytes of a group table (memory-grant accounting on
/// the device).
pub fn group_table_memory_bytes(acc: &GroupTable, num_aggs: usize) -> u64 {
    acc.keys()
        .map(|k| k.len() as u64 + num_aggs as u64 * 24 + 48)
        .sum()
}

/// Materializes a group table as output rows: grouping columns (decoded
/// from the key bytes) followed by each aggregate's final value as `Int64`
/// (saturating; aggregates that genuinely need 128 bits should stay
/// scalar, where partials travel as `AggState`).
pub fn group_table_rows(acc: &GroupTable, key_schema: &Schema) -> Vec<Tuple> {
    acc.iter()
        .map(|(key, states)| {
            let mut row = Tuple::with_capacity(key_schema.len() + states.len());
            for (i, col) in key_schema.columns().iter().enumerate() {
                let off = key_schema.offset(i);
                row.push(smartssd_storage::tuple::decode_field(
                    col.ty,
                    &key[off..off + col.ty.width()],
                ));
            }
            for st in states {
                let v = st.finish();
                row.push(smartssd_storage::Datum::I64(v.clamp(
                    i64::MIN as i128,
                    i64::MAX as i128,
                ) as i64));
            }
            row
        })
        .collect()
}

/// Merges one group table into another (host-side merge of device
/// partials, or array gather).
pub fn merge_group_tables(into: &mut GroupTable, from: GroupTable) {
    for (key, states) in from {
        match into.entry(key) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(states);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                for (a, b) in e.get_mut().iter_mut().zip(states.iter()) {
                    a.merge(b);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScanSpec;
    use smartssd_storage::expr::{AggFunc, AggSpec, CmpOp, Expr, Pred};
    use smartssd_storage::{DataType, Datum, TableBuilder};
    use std::sync::Arc;

    fn table(layout: Layout) -> smartssd_storage::TableImage {
        let s = Schema::from_pairs(&[("k", DataType::Int32), ("v", DataType::Int64)]);
        let mut b = TableBuilder::new("t", Arc::clone(&s), layout);
        b.extend((0..100).map(|k| vec![Datum::I32(k), Datum::I64(k as i64 * 2)] as Tuple));
        b.finish()
    }

    #[test]
    fn scan_filters_and_projects_both_layouts() {
        for layout in [Layout::Nsm, Layout::Pax] {
            let img = table(layout);
            let spec = ScanSpec {
                pred: Pred::Cmp(CmpOp::Lt, Expr::col(0), Expr::lit(10)),
                project: vec![1],
            };
            let mut out = Vec::new();
            let mut w = WorkCounts::default();
            for p in img.pages() {
                scan_page(p, img.schema(), &spec, &mut out, &mut w);
            }
            assert_eq!(out.len(), 10);
            assert_eq!(out[3], vec![Datum::I64(6)]);
            assert_eq!(w.tuples(), 100);
            assert_eq!(w.out_tuples, 10);
            assert_eq!(w.out_bytes, 80);
            match layout {
                Layout::Nsm => assert_eq!(w.tuples_nsm, 100),
                Layout::Pax => assert_eq!(w.tuples_pax, 100),
            }
        }
    }

    #[test]
    fn agg_kernel_matches_manual_sum() {
        let img = table(Layout::Pax);
        let spec = ScanAggSpec {
            pred: Pred::Cmp(CmpOp::Ge, Expr::col(0), Expr::lit(50)),
            aggs: vec![
                AggSpec::sum(Expr::col(1)),
                AggSpec::count(),
                AggSpec::min(Expr::col(0)),
                AggSpec::max(Expr::col(0)),
            ],
        };
        let mut states: Vec<AggState> = spec.aggs.iter().map(|a| AggState::new(a.func)).collect();
        let mut w = WorkCounts::default();
        for p in img.pages() {
            scan_agg_page(p, img.schema(), &spec, &mut states, &mut w);
        }
        let expected: i128 = (50..100).map(|k| k as i128 * 2).sum();
        assert_eq!(states[0].finish(), expected);
        assert_eq!(states[1].finish(), 50);
        assert_eq!(states[2].finish(), 50);
        assert_eq!(states[3].finish(), 99);
        assert_eq!(w.agg_updates, 200); // 4 aggs x 50 qualifying rows
        let _ = AggFunc::Sum;
    }

    #[test]
    fn empty_predicate_counts_no_outputs() {
        let img = table(Layout::Nsm);
        let spec = ScanSpec {
            pred: Pred::Const(false),
            project: vec![0],
        };
        let mut out = Vec::new();
        let mut w = WorkCounts::default();
        for p in img.pages() {
            scan_page(p, img.schema(), &spec, &mut out, &mut w);
        }
        assert!(out.is_empty());
        assert_eq!(w.out_tuples, 0);
        assert_eq!(w.tuples(), 100);
    }

    #[test]
    fn group_agg_matches_manual_grouping() {
        use crate::spec::GroupAggSpec;
        let s = Schema::from_pairs(&[
            ("g", DataType::Int32),
            ("v", DataType::Int64),
        ]);
        let mut b = TableBuilder::new("t", Arc::clone(&s), Layout::Pax);
        b.extend((0..1000).map(|k| vec![Datum::I32(k % 7), Datum::I64(k as i64)] as Tuple));
        let img = b.finish();
        let spec = GroupAggSpec {
            pred: Pred::Cmp(CmpOp::Ge, Expr::col(1), Expr::lit(100)),
            group_by: vec![0],
            aggs: vec![AggSpec::sum(Expr::col(1)), AggSpec::count()],
        };
        let mut acc = GroupTable::new();
        let mut w = WorkCounts::default();
        for p in img.pages() {
            scan_group_agg_page(p, img.schema(), &spec, &mut acc, &mut w);
        }
        assert_eq!(acc.len(), 7);
        let rows = group_table_rows(&acc, &spec.key_schema(&s));
        // Reference grouping.
        for row in &rows {
            let g = row[0].as_i64();
            let expected_sum: i64 = (100..1000).filter(|k| k % 7 == g).sum();
            let expected_cnt = (100..1000).filter(|k| k % 7 == g).count() as i64;
            assert_eq!(row[1].as_i64(), expected_sum, "group {g}");
            assert_eq!(row[2].as_i64(), expected_cnt, "group {g}");
        }
        assert!(group_table_memory_bytes(&acc, 2) > 0);
        assert!(w.hash_probes >= 900);
    }

    #[test]
    fn group_table_merge_equals_single_pass() {
        use crate::spec::GroupAggSpec;
        let s = Schema::from_pairs(&[("g", DataType::Int32), ("v", DataType::Int64)]);
        let rows: Vec<Tuple> = (0..500)
            .map(|k| vec![Datum::I32(k % 5), Datum::I64(k as i64 * 3)])
            .collect();
        let spec = GroupAggSpec {
            pred: Pred::Const(true),
            group_by: vec![0],
            aggs: vec![AggSpec::sum(Expr::col(1)), AggSpec::min(Expr::col(1))],
        };
        let build = |slice: &[Tuple]| {
            let mut b = TableBuilder::new("t", Arc::clone(&s), Layout::Nsm);
            b.extend(slice.iter().cloned());
            let img = b.finish();
            let mut acc = GroupTable::new();
            let mut w = WorkCounts::default();
            for p in img.pages() {
                scan_group_agg_page(p, img.schema(), &spec, &mut acc, &mut w);
            }
            acc
        };
        let whole = build(&rows);
        let mut merged = build(&rows[..200]);
        merge_group_tables(&mut merged, build(&rows[200..]));
        assert_eq!(
            group_table_rows(&whole, &spec.key_schema(&s)),
            group_table_rows(&merged, &spec.key_schema(&s))
        );
    }

    #[test]
    fn short_circuit_reduces_counted_atoms() {
        let img = table(Layout::Pax);
        // First conjunct fails for 90% of rows; with short-circuiting total
        // atoms << 2 * rows.
        let spec = ScanSpec {
            pred: Pred::And(vec![
                Pred::Cmp(CmpOp::Lt, Expr::col(0), Expr::lit(10)),
                Pred::Cmp(CmpOp::Lt, Expr::col(1), Expr::lit(1_000)),
            ]),
            project: vec![0],
        };
        let mut out = Vec::new();
        let mut w = WorkCounts::default();
        for p in img.pages() {
            scan_page(p, img.schema(), &spec, &mut out, &mut w);
        }
        assert_eq!(w.pred_atoms, 110); // 100 first atoms + 10 second atoms
    }
}
