#![warn(missing_docs)]

//! Shared physical operator kernels with work accounting.
//!
//! The paper runs "the same query plan" in two places: inside the Smart SSD
//! (pushdown) and on the host (the regular SSD/HDD baselines, Section 4.2.2:
//! "we used the same query plan as the Smart SSD, but the plan was run
//! entirely in the host"). To honour that symmetry — and to guarantee both
//! paths compute identical answers — the operator kernels are implemented
//! once, here, and both engines call them.
//!
//! What differs between the two environments is *how long the work takes*.
//! Every kernel therefore returns a [`WorkCounts`] receipt of the primitive
//! operations it performed (tuples decoded per layout, predicate atoms
//! evaluated with short-circuiting, hash probes, output bytes, ...). The
//! device and host each own a [`CostTable`] that converts a receipt into CPU
//! cycles for their respective processors: a few hundred cycles per NSM
//! tuple on the device's embedded cores is what turns the 2.8x bandwidth
//! advantage of Table 2 into the 1.7x end-to-end gain of Figure 3.

pub mod join;
pub mod kernels;
pub mod par;
pub mod reference;
pub mod spec;
pub mod wire;
pub mod work;

pub use join::{JoinHashTable, JoinSink, JoinedRow};
pub use kernels::{
    group_table_memory_bytes, group_table_rows, merge_group_tables, page_reader, scan_agg_page,
    scan_group_agg_page, scan_page, GroupTable,
};
pub use par::{default_workers, parallel_map, runs_serial};
pub use spec::{
    BuildSide, ColRef, GroupAggSpec, JoinOutput, JoinSpec, QueryOp, ScanAggSpec, ScanSpec, TableRef,
};
pub use wire::{decode_op, encode_op, WireError};
pub use work::{CostTable, WorkCounts};
