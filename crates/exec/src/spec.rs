//! Physical operator specifications — the `OPEN` parameters.
//!
//! Paper Section 3: "the query operation to be performed is passed as
//! parameters to the OPEN call". These types *are* those parameters: enough
//! to describe every operation the paper pushes down (scan, aggregation,
//! selection-with-join, join-with-aggregation) plus where the inputs live on
//! the device (LBA ranges).

use smartssd_storage::expr::{AggSpec, Pred};
use smartssd_storage::{Layout, Schema};
use std::sync::Arc;

/// Where a table lives on the device and how to decode it.
#[derive(Debug, Clone)]
pub struct TableRef {
    /// First logical block address of the table.
    pub first_lba: u64,
    /// Number of consecutive pages.
    pub num_pages: u64,
    /// Row schema.
    pub schema: Arc<Schema>,
    /// Page layout the table was written with.
    pub layout: Layout,
}

impl TableRef {
    /// Iterates the table's LBAs in storage order.
    pub fn lbas(&self) -> impl Iterator<Item = u64> {
        self.first_lba..self.first_lba + self.num_pages
    }
}

/// Filter + project scan.
#[derive(Debug, Clone)]
pub struct ScanSpec {
    /// Row filter.
    pub pred: Pred,
    /// Output columns, by input-schema index.
    pub project: Vec<usize>,
}

impl ScanSpec {
    /// Output schema implied by the projection.
    pub fn output_schema(&self, input: &Schema) -> Arc<Schema> {
        input.project(&self.project)
    }

    /// Validates against the input schema.
    pub fn validate(&self, input: &Schema) -> Result<(), smartssd_storage::expr::ExprError> {
        self.pred.validate(input)?;
        for &c in &self.project {
            if c >= input.len() {
                return Err(smartssd_storage::expr::ExprError::ColumnOutOfRange(c));
            }
        }
        Ok(())
    }
}

/// Filter + aggregate scan (TPC-H Q6 shape). Produces one row of aggregate
/// partials per execution unit, merged by the consumer.
#[derive(Debug, Clone)]
pub struct ScanAggSpec {
    /// Row filter.
    pub pred: Pred,
    /// Aggregates computed over qualifying rows.
    pub aggs: Vec<AggSpec>,
}

impl ScanAggSpec {
    /// Validates against the input schema.
    pub fn validate(&self, input: &Schema) -> Result<(), smartssd_storage::expr::ExprError> {
        self.pred.validate(input)?;
        for a in &self.aggs {
            a.expr.validate(input)?;
        }
        Ok(())
    }
}

/// A column of the join output: either from the probe row or from the
/// build-side payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColRef {
    /// Probe-side column, by probe-schema index.
    Probe(usize),
    /// Build-side payload column, by position within the build payload.
    Build(usize),
}

/// The build side of a simple hash join: which device-resident table to
/// build from, its key, and which columns to carry as payload.
///
/// The paper's joins build on the small table (Synthetic64_R, PART) because
/// its hash table fits in memory (Sections 4.2.2.1/4.2.2.2); in the pushdown
/// plans of Figures 4 and 6 the build happens inside the device.
#[derive(Debug, Clone)]
pub struct BuildSide {
    /// The build table (on the same device).
    pub table: TableRef,
    /// Equi-join key column in the build schema.
    pub key_col: usize,
    /// Payload columns (by build-schema index) carried into the output.
    pub payload: Vec<usize>,
}

impl BuildSide {
    /// Schema of the carried payload.
    pub fn payload_schema(&self) -> Arc<Schema> {
        self.table.schema.project(&self.payload)
    }
}

/// What the join produces.
#[derive(Debug, Clone)]
pub enum JoinOutput {
    /// Materialized output rows (Figure 4's selection-with-join).
    Project(Vec<ColRef>),
    /// Aggregates over the joined row (Figure 6's Q14). Expressions use the
    /// *joined schema*: probe columns first, then build payload columns.
    Aggregate(Vec<AggSpec>),
}

/// Simple hash join: build on the small table, stream the big table.
#[derive(Debug, Clone)]
pub struct JoinSpec {
    /// Build side.
    pub build: BuildSide,
    /// Equi-join key column in the probe schema.
    pub probe_key: usize,
    /// Predicate over probe rows.
    pub probe_pred: Pred,
    /// If true, the predicate runs before the probe (Figure 4's plan:
    /// selection below the join); if false, rows probe first and only
    /// matches are filtered (Figure 6's plan, where the selection slot of
    /// Figure 4 is replaced by the aggregation — this ordering is why the
    /// paper found Q14 CPU-heavy inside the device).
    pub filter_first: bool,
    /// Output shape.
    pub output: JoinOutput,
}

impl JoinSpec {
    /// The joined schema seen by `JoinOutput::Aggregate` expressions:
    /// probe columns, then build payload columns.
    pub fn joined_schema(&self, probe: &Schema) -> Arc<Schema> {
        let mut cols: Vec<smartssd_storage::Column> = probe.columns().to_vec();
        for c in self.build.payload_schema().columns() {
            let mut c = c.clone();
            // Disambiguate duplicate names across sides.
            c.name = format!("build.{}", c.name);
            cols.push(c);
        }
        Schema::new(cols)
    }

    /// Validates the spec against the probe schema (the build schema is
    /// carried inside `build.table`).
    pub fn validate(&self, probe: &Schema) -> Result<(), smartssd_storage::expr::ExprError> {
        use smartssd_storage::expr::ExprError;
        self.probe_pred.validate(probe)?;
        if self.probe_key >= probe.len() {
            return Err(ExprError::ColumnOutOfRange(self.probe_key));
        }
        let build_schema = &self.build.table.schema;
        if self.build.key_col >= build_schema.len() {
            return Err(ExprError::ColumnOutOfRange(self.build.key_col));
        }
        for &p in &self.build.payload {
            if p >= build_schema.len() {
                return Err(ExprError::ColumnOutOfRange(p));
            }
        }
        match &self.output {
            JoinOutput::Project(cols) => {
                for c in cols {
                    match *c {
                        ColRef::Probe(i) if i >= probe.len() => {
                            return Err(ExprError::ColumnOutOfRange(i))
                        }
                        ColRef::Build(i) if i >= self.build.payload.len() => {
                            return Err(ExprError::ColumnOutOfRange(i))
                        }
                        _ => {}
                    }
                }
            }
            JoinOutput::Aggregate(aggs) => {
                let joined = self.joined_schema(probe);
                for a in aggs {
                    a.expr.validate(&joined)?;
                }
            }
        }
        Ok(())
    }
}

/// A pushdown operation, as carried by the `OPEN` command.
#[derive(Debug, Clone)]
pub enum QueryOp {
    /// Filtered, projected scan of one table; streams rows back.
    Scan {
        /// Input table.
        table: TableRef,
        /// Scan parameters.
        spec: ScanSpec,
    },
    /// Filtered aggregation over one table; streams aggregate partials.
    ScanAgg {
        /// Input table.
        table: TableRef,
        /// Aggregation parameters.
        spec: ScanAggSpec,
    },
    /// Filtered grouped aggregation over one table; streams one row per
    /// group.
    GroupAgg {
        /// Input table.
        table: TableRef,
        /// Grouped-aggregation parameters.
        spec: GroupAggSpec,
    },
    /// Hash join with the probe table streamed; build side read in-device.
    Join {
        /// Probe-side (large) table.
        probe: TableRef,
        /// Join parameters.
        spec: JoinSpec,
    },
}

impl QueryOp {
    /// Validates the operation against its embedded schemas.
    pub fn validate(&self) -> Result<(), smartssd_storage::expr::ExprError> {
        match self {
            QueryOp::Scan { table, spec } => spec.validate(&table.schema),
            QueryOp::ScanAgg { table, spec } => spec.validate(&table.schema),
            QueryOp::GroupAgg { table, spec } => spec.validate(&table.schema),
            QueryOp::Join { probe, spec } => spec.validate(&probe.schema),
        }
    }

    /// Total pages this operation will read from the device.
    pub fn input_pages(&self) -> u64 {
        match self {
            QueryOp::Scan { table, .. }
            | QueryOp::ScanAgg { table, .. }
            | QueryOp::GroupAgg { table, .. } => table.num_pages,
            QueryOp::Join { probe, spec } => probe.num_pages + spec.build.table.num_pages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartssd_storage::expr::{CmpOp, Expr};
    use smartssd_storage::DataType;

    fn probe_schema() -> Arc<Schema> {
        Schema::from_pairs(&[
            ("k", DataType::Int32),
            ("v", DataType::Int64),
            ("s", DataType::Char(4)),
        ])
    }

    fn build_ref() -> TableRef {
        TableRef {
            first_lba: 0,
            num_pages: 1,
            schema: Schema::from_pairs(&[("id", DataType::Int32), ("pay", DataType::Int64)]),
            layout: Layout::Nsm,
        }
    }

    #[test]
    fn scan_spec_output_schema() {
        let s = probe_schema();
        let spec = ScanSpec {
            pred: Pred::Const(true),
            project: vec![2, 0],
        };
        let out = spec.output_schema(&s);
        assert_eq!(out.column(0).name, "s");
        assert_eq!(out.column(1).name, "k");
        assert!(spec.validate(&s).is_ok());
    }

    #[test]
    fn scan_spec_rejects_bad_projection() {
        let s = probe_schema();
        let spec = ScanSpec {
            pred: Pred::Const(true),
            project: vec![9],
        };
        assert!(spec.validate(&s).is_err());
    }

    #[test]
    fn join_spec_joined_schema_and_validation() {
        let probe = probe_schema();
        let spec = JoinSpec {
            build: BuildSide {
                table: build_ref(),
                key_col: 0,
                payload: vec![1],
            },
            probe_key: 0,
            probe_pred: Pred::Cmp(CmpOp::Lt, Expr::col(1), Expr::lit(10)),
            filter_first: true,
            output: JoinOutput::Project(vec![ColRef::Probe(0), ColRef::Build(0)]),
        };
        assert!(spec.validate(&probe).is_ok());
        let joined = spec.joined_schema(&probe);
        assert_eq!(joined.len(), 4);
        assert_eq!(joined.column(3).name, "build.pay");
    }

    #[test]
    fn join_spec_rejects_bad_refs() {
        let probe = probe_schema();
        let mut spec = JoinSpec {
            build: BuildSide {
                table: build_ref(),
                key_col: 0,
                payload: vec![1],
            },
            probe_key: 99,
            probe_pred: Pred::Const(true),
            filter_first: true,
            output: JoinOutput::Project(vec![]),
        };
        assert!(spec.validate(&probe).is_err());
        spec.probe_key = 0;
        spec.output = JoinOutput::Project(vec![ColRef::Build(5)]);
        assert!(spec.validate(&probe).is_err());
    }

    #[test]
    fn aggregate_output_validates_against_joined_schema() {
        let probe = probe_schema();
        let spec = JoinSpec {
            build: BuildSide {
                table: build_ref(),
                key_col: 0,
                payload: vec![1],
            },
            probe_key: 0,
            probe_pred: Pred::Const(true),
            filter_first: false,
            // Column 3 = build payload; valid only in the joined schema.
            output: JoinOutput::Aggregate(vec![AggSpec::sum(Expr::col(3))]),
        };
        assert!(spec.validate(&probe).is_ok());
    }

    #[test]
    fn query_op_input_pages() {
        let op = QueryOp::Join {
            probe: TableRef {
                first_lba: 10,
                num_pages: 100,
                schema: probe_schema(),
                layout: Layout::Pax,
            },
            spec: JoinSpec {
                build: BuildSide {
                    table: build_ref(),
                    key_col: 0,
                    payload: vec![],
                },
                probe_key: 0,
                probe_pred: Pred::Const(true),
                filter_first: true,
                output: JoinOutput::Project(vec![]),
            },
        };
        assert_eq!(op.input_pages(), 101);
    }

    #[test]
    fn table_ref_lba_iteration() {
        let t = TableRef {
            first_lba: 5,
            num_pages: 3,
            schema: probe_schema(),
            layout: Layout::Nsm,
        };
        assert_eq!(t.lbas().collect::<Vec<_>>(), vec![5, 6, 7]);
    }
}

/// Filter + group-by + aggregate scan (the TPC-H Q1 shape).
///
/// The paper pushes only scalar aggregation; grouped aggregation inside the
/// device is one of the operators its Section 5 leaves as future work. The
/// device treats the group table like a join hash table: it consumes the
/// session's memory grant and the session fails (falling back to the host)
/// if the grant is exceeded.
#[derive(Debug, Clone)]
pub struct GroupAggSpec {
    /// Row filter.
    pub pred: Pred,
    /// Grouping columns, by input-schema index (any type).
    pub group_by: Vec<usize>,
    /// Aggregates computed per group.
    pub aggs: Vec<AggSpec>,
}

impl GroupAggSpec {
    /// Output schema: grouping columns followed by one `Int64` per
    /// aggregate (aggregate values are emitted as 64-bit integers; sums
    /// that genuinely need 128 bits stay scalar-only).
    pub fn output_schema(&self, input: &Schema) -> std::sync::Arc<Schema> {
        let mut cols: Vec<smartssd_storage::Column> = self
            .group_by
            .iter()
            .map(|&c| input.column(c).clone())
            .collect();
        for (i, _) in self.aggs.iter().enumerate() {
            cols.push(smartssd_storage::Column::new(
                format!("agg_{i}"),
                smartssd_storage::DataType::Int64,
            ));
        }
        Schema::new(cols)
    }

    /// The schema of just the grouping key.
    pub fn key_schema(&self, input: &Schema) -> std::sync::Arc<Schema> {
        input.project(&self.group_by)
    }

    /// Validates against the input schema.
    pub fn validate(&self, input: &Schema) -> Result<(), smartssd_storage::expr::ExprError> {
        use smartssd_storage::expr::ExprError;
        self.pred.validate(input)?;
        if self.group_by.is_empty() {
            // Scalar aggregation should use `ScanAggSpec`.
            return Err(ExprError::ColumnOutOfRange(usize::MAX));
        }
        for &c in &self.group_by {
            if c >= input.len() {
                return Err(ExprError::ColumnOutOfRange(c));
            }
        }
        for a in &self.aggs {
            a.expr.validate(input)?;
        }
        Ok(())
    }
}
