//! Binary marshalling of `OPEN` parameters.
//!
//! Paper Section 3: the protocol is "compatible with the standard SATA/SAS
//! interfaces", so the query operator must cross the bus as bytes inside a
//! vendor-specific command payload. This module is that marshalling layer:
//! the host encodes a [`QueryOp`] (schemas, expressions, predicates,
//! aggregates, table extents) into a self-contained buffer; the device
//! firmware decodes and validates it before granting the session.
//!
//! The format is a deliberately simple tag-length-value encoding:
//! little-endian integers, length-prefixed byte strings, recursive nodes
//! with one-byte tags. Decoding is defensive — any truncation, unknown tag,
//! or oversized length yields a [`WireError`] instead of a panic, because
//! the device must survive malformed host commands.

use crate::spec::{
    BuildSide, ColRef, GroupAggSpec, JoinOutput, JoinSpec, QueryOp, ScanAggSpec, ScanSpec, TableRef,
};
use smartssd_storage::expr::{AggFunc, AggSpec, CmpOp, Expr, Pred};
use smartssd_storage::{Column, DataType, Layout, Schema};
use std::fmt;
use std::sync::Arc;

/// Decoding failures (malformed or hostile command payloads).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Payload ended before a field was complete.
    Truncated,
    /// Unknown tag byte at the given offset.
    BadTag(u8),
    /// A length field exceeded the remaining payload or a sanity bound.
    BadLength(u64),
    /// Trailing garbage after a complete operator.
    TrailingBytes(usize),
    /// Nesting deeper than the decoder permits (stack protection).
    TooDeep,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "payload truncated"),
            WireError::BadTag(t) => write!(f, "unknown tag {t:#x}"),
            WireError::BadLength(n) => write!(f, "implausible length {n}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes"),
            WireError::TooDeep => write!(f, "expression nesting too deep"),
        }
    }
}

impl std::error::Error for WireError {}

/// Maximum recursive depth the decoder accepts — generous for real queries,
/// small enough to bound firmware stack usage.
const MAX_DEPTH: usize = 64;

/// Sanity cap on any single length field (schemas, strings, vectors).
const MAX_LEN: u64 = 1 << 20;

// ---------------------------------------------------------------- encoder

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, b: &[u8]) {
        self.u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }
    fn usizes(&mut self, v: &[usize]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.u64(x as u64);
        }
    }

    fn datatype(&mut self, t: DataType) {
        match t {
            DataType::Int32 => self.u8(0),
            DataType::Int64 => self.u8(1),
            DataType::Char(w) => {
                self.u8(2);
                self.u16(w);
            }
        }
    }

    fn schema(&mut self, s: &Schema) {
        self.u64(s.len() as u64);
        for c in s.columns() {
            self.bytes(c.name.as_bytes());
            self.datatype(c.ty);
        }
    }

    fn table(&mut self, t: &TableRef) {
        self.u64(t.first_lba);
        self.u64(t.num_pages);
        self.u8(match t.layout {
            Layout::Nsm => 0,
            Layout::Pax => 1,
        });
        self.schema(&t.schema);
    }

    fn cmp(&mut self, op: CmpOp) {
        self.u8(match op {
            CmpOp::Eq => 0,
            CmpOp::Ne => 1,
            CmpOp::Lt => 2,
            CmpOp::Le => 3,
            CmpOp::Gt => 4,
            CmpOp::Ge => 5,
        });
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Col(c) => {
                self.u8(0);
                self.u64(*c as u64);
            }
            Expr::Lit(v) => {
                self.u8(1);
                self.i64(*v);
            }
            Expr::Add(a, b) => {
                self.u8(2);
                self.expr(a);
                self.expr(b);
            }
            Expr::Sub(a, b) => {
                self.u8(3);
                self.expr(a);
                self.expr(b);
            }
            Expr::Mul(a, b) => {
                self.u8(4);
                self.expr(a);
                self.expr(b);
            }
            Expr::Case {
                when,
                then,
                otherwise,
            } => {
                self.u8(5);
                self.pred(when);
                self.expr(then);
                self.expr(otherwise);
            }
        }
    }

    fn pred(&mut self, p: &Pred) {
        match p {
            Pred::Cmp(op, a, b) => {
                self.u8(0);
                self.cmp(*op);
                self.expr(a);
                self.expr(b);
            }
            Pred::StrCmp { col, op, lit } => {
                self.u8(1);
                self.u64(*col as u64);
                self.cmp(*op);
                self.bytes(lit);
            }
            Pred::LikePrefix { col, prefix } => {
                self.u8(2);
                self.u64(*col as u64);
                self.bytes(prefix);
            }
            Pred::And(ps) => {
                self.u8(3);
                self.u64(ps.len() as u64);
                for q in ps {
                    self.pred(q);
                }
            }
            Pred::Or(ps) => {
                self.u8(4);
                self.u64(ps.len() as u64);
                for q in ps {
                    self.pred(q);
                }
            }
            Pred::Not(q) => {
                self.u8(5);
                self.pred(q);
            }
            Pred::Const(b) => {
                self.u8(6);
                self.u8(u8::from(*b));
            }
        }
    }

    fn aggs(&mut self, aggs: &[AggSpec]) {
        self.u64(aggs.len() as u64);
        for a in aggs {
            self.u8(match a.func {
                AggFunc::Sum => 0,
                AggFunc::Count => 1,
                AggFunc::Min => 2,
                AggFunc::Max => 3,
            });
            self.expr(&a.expr);
        }
    }
}

/// Encodes an operator into a self-contained command payload.
pub fn encode_op(op: &QueryOp) -> Vec<u8> {
    let mut e = Enc { buf: Vec::new() };
    match op {
        QueryOp::Scan { table, spec } => {
            e.u8(0);
            e.table(table);
            e.pred(&spec.pred);
            e.usizes(&spec.project);
        }
        QueryOp::ScanAgg { table, spec } => {
            e.u8(1);
            e.table(table);
            e.pred(&spec.pred);
            e.aggs(&spec.aggs);
        }
        QueryOp::GroupAgg { table, spec } => {
            e.u8(2);
            e.table(table);
            e.pred(&spec.pred);
            e.usizes(&spec.group_by);
            e.aggs(&spec.aggs);
        }
        QueryOp::Join { probe, spec } => {
            e.u8(3);
            e.table(probe);
            e.table(&spec.build.table);
            e.u64(spec.build.key_col as u64);
            e.usizes(&spec.build.payload);
            e.u64(spec.probe_key as u64);
            e.pred(&spec.probe_pred);
            e.u8(u8::from(spec.filter_first));
            match &spec.output {
                JoinOutput::Project(cols) => {
                    e.u8(0);
                    e.u64(cols.len() as u64);
                    for c in cols {
                        match *c {
                            ColRef::Probe(i) => {
                                e.u8(0);
                                e.u64(i as u64);
                            }
                            ColRef::Build(i) => {
                                e.u8(1);
                                e.u64(i as u64);
                            }
                        }
                    }
                }
                JoinOutput::Aggregate(aggs) => {
                    e.u8(1);
                    e.aggs(aggs);
                }
            }
        }
    }
    e.buf
}

// ---------------------------------------------------------------- decoder

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn len(&mut self) -> Result<usize, WireError> {
        let n = self.u64()?;
        if n > MAX_LEN {
            return Err(WireError::BadLength(n));
        }
        Ok(n as usize)
    }
    fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.len()?;
        self.take(n)
    }
    fn usizes(&mut self) -> Result<Vec<usize>, WireError> {
        let n = self.len()?;
        (0..n).map(|_| Ok(self.u64()? as usize)).collect()
    }

    fn datatype(&mut self) -> Result<DataType, WireError> {
        match self.u8()? {
            0 => Ok(DataType::Int32),
            1 => Ok(DataType::Int64),
            2 => Ok(DataType::Char(self.u16()?)),
            t => Err(WireError::BadTag(t)),
        }
    }

    fn schema(&mut self) -> Result<Arc<Schema>, WireError> {
        let n = self.len()?;
        if n == 0 {
            return Err(WireError::BadLength(0));
        }
        let mut cols = Vec::with_capacity(n);
        for _ in 0..n {
            let name = String::from_utf8_lossy(self.bytes()?).into_owned();
            let ty = self.datatype()?;
            cols.push(Column::new(name, ty));
        }
        Ok(Schema::new(cols))
    }

    fn table(&mut self) -> Result<TableRef, WireError> {
        let first_lba = self.u64()?;
        let num_pages = self.u64()?;
        let layout = match self.u8()? {
            0 => Layout::Nsm,
            1 => Layout::Pax,
            t => return Err(WireError::BadTag(t)),
        };
        Ok(TableRef {
            first_lba,
            num_pages,
            schema: self.schema()?,
            layout,
        })
    }

    fn cmp(&mut self) -> Result<CmpOp, WireError> {
        Ok(match self.u8()? {
            0 => CmpOp::Eq,
            1 => CmpOp::Ne,
            2 => CmpOp::Lt,
            3 => CmpOp::Le,
            4 => CmpOp::Gt,
            5 => CmpOp::Ge,
            t => return Err(WireError::BadTag(t)),
        })
    }

    fn expr(&mut self, depth: usize) -> Result<Expr, WireError> {
        if depth > MAX_DEPTH {
            return Err(WireError::TooDeep);
        }
        Ok(match self.u8()? {
            0 => Expr::Col(self.u64()? as usize),
            1 => Expr::Lit(self.i64()?),
            2 => Expr::Add(
                Box::new(self.expr(depth + 1)?),
                Box::new(self.expr(depth + 1)?),
            ),
            3 => Expr::Sub(
                Box::new(self.expr(depth + 1)?),
                Box::new(self.expr(depth + 1)?),
            ),
            4 => Expr::Mul(
                Box::new(self.expr(depth + 1)?),
                Box::new(self.expr(depth + 1)?),
            ),
            5 => Expr::Case {
                when: Box::new(self.pred(depth + 1)?),
                then: Box::new(self.expr(depth + 1)?),
                otherwise: Box::new(self.expr(depth + 1)?),
            },
            t => return Err(WireError::BadTag(t)),
        })
    }

    fn pred(&mut self, depth: usize) -> Result<Pred, WireError> {
        if depth > MAX_DEPTH {
            return Err(WireError::TooDeep);
        }
        Ok(match self.u8()? {
            0 => Pred::Cmp(self.cmp()?, self.expr(depth + 1)?, self.expr(depth + 1)?),
            1 => Pred::StrCmp {
                col: self.u64()? as usize,
                op: self.cmp()?,
                lit: self.bytes()?.into(),
            },
            2 => Pred::LikePrefix {
                col: self.u64()? as usize,
                prefix: self.bytes()?.into(),
            },
            3 => {
                let n = self.len()?;
                Pred::And(
                    (0..n)
                        .map(|_| self.pred(depth + 1))
                        .collect::<Result<_, _>>()?,
                )
            }
            4 => {
                let n = self.len()?;
                Pred::Or(
                    (0..n)
                        .map(|_| self.pred(depth + 1))
                        .collect::<Result<_, _>>()?,
                )
            }
            5 => Pred::Not(Box::new(self.pred(depth + 1)?)),
            6 => Pred::Const(self.u8()? != 0),
            t => return Err(WireError::BadTag(t)),
        })
    }

    fn aggs(&mut self) -> Result<Vec<AggSpec>, WireError> {
        let n = self.len()?;
        (0..n)
            .map(|_| {
                let func = match self.u8()? {
                    0 => AggFunc::Sum,
                    1 => AggFunc::Count,
                    2 => AggFunc::Min,
                    3 => AggFunc::Max,
                    t => return Err(WireError::BadTag(t)),
                };
                Ok(AggSpec {
                    func,
                    expr: self.expr(0)?,
                })
            })
            .collect()
    }
}

/// Decodes a command payload back into an operator. The result still goes
/// through [`QueryOp::validate`] on the device — the wire layer only
/// guarantees structural well-formedness.
pub fn decode_op(bytes: &[u8]) -> Result<QueryOp, WireError> {
    let mut d = Dec { buf: bytes, pos: 0 };
    let op = match d.u8()? {
        0 => QueryOp::Scan {
            table: d.table()?,
            spec: ScanSpec {
                pred: d.pred(0)?,
                project: d.usizes()?,
            },
        },
        1 => QueryOp::ScanAgg {
            table: d.table()?,
            spec: ScanAggSpec {
                pred: d.pred(0)?,
                aggs: d.aggs()?,
            },
        },
        2 => QueryOp::GroupAgg {
            table: d.table()?,
            spec: GroupAggSpec {
                pred: d.pred(0)?,
                group_by: d.usizes()?,
                aggs: d.aggs()?,
            },
        },
        3 => {
            let probe = d.table()?;
            let build_table = d.table()?;
            let key_col = d.u64()? as usize;
            let payload = d.usizes()?;
            let probe_key = d.u64()? as usize;
            let probe_pred = d.pred(0)?;
            let filter_first = d.u8()? != 0;
            let output = match d.u8()? {
                0 => {
                    let n = d.len()?;
                    let mut cols = Vec::with_capacity(n);
                    for _ in 0..n {
                        cols.push(match d.u8()? {
                            0 => ColRef::Probe(d.u64()? as usize),
                            1 => ColRef::Build(d.u64()? as usize),
                            t => return Err(WireError::BadTag(t)),
                        });
                    }
                    JoinOutput::Project(cols)
                }
                1 => JoinOutput::Aggregate(d.aggs()?),
                t => return Err(WireError::BadTag(t)),
            };
            QueryOp::Join {
                probe,
                spec: JoinSpec {
                    build: BuildSide {
                        table: build_table,
                        key_col,
                        payload,
                    },
                    probe_key,
                    probe_pred,
                    filter_first,
                    output,
                },
            }
        }
        t => return Err(WireError::BadTag(t)),
    };
    if d.pos != bytes.len() {
        return Err(WireError::TrailingBytes(bytes.len() - d.pos));
    }
    Ok(op)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_schema() -> Arc<Schema> {
        Schema::from_pairs(&[
            ("k", DataType::Int32),
            ("v", DataType::Int64),
            ("s", DataType::Char(10)),
        ])
    }

    fn sample_table() -> TableRef {
        TableRef {
            first_lba: 42,
            num_pages: 1000,
            schema: sample_schema(),
            layout: Layout::Pax,
        }
    }

    /// Structural equality for ops (TableRef has no PartialEq because of
    /// Arc<Schema>; compare the encodings instead — the codec is
    /// deterministic).
    fn assert_round_trip(op: &QueryOp) {
        let bytes = encode_op(op);
        let back = decode_op(&bytes).expect("decode");
        assert_eq!(bytes, encode_op(&back), "re-encoding differs");
    }

    #[test]
    fn scan_round_trips() {
        assert_round_trip(&QueryOp::Scan {
            table: sample_table(),
            spec: ScanSpec {
                pred: Pred::And(vec![
                    Pred::Cmp(CmpOp::Lt, Expr::col(0), Expr::lit(5)),
                    Pred::LikePrefix {
                        col: 2,
                        prefix: b"PRO".as_slice().into(),
                    },
                ]),
                project: vec![2, 0],
            },
        });
    }

    #[test]
    fn scan_agg_round_trips() {
        assert_round_trip(&QueryOp::ScanAgg {
            table: sample_table(),
            spec: ScanAggSpec {
                pred: Pred::Or(vec![
                    Pred::Const(true),
                    Pred::Not(Box::new(Pred::Const(false))),
                ]),
                aggs: vec![
                    AggSpec::sum(Expr::col(1).mul(Expr::lit(100).sub(Expr::col(0)))),
                    AggSpec::count(),
                    AggSpec::min(Expr::col(0)),
                    AggSpec::max(Expr::col(1)),
                ],
            },
        });
    }

    #[test]
    fn group_agg_round_trips() {
        assert_round_trip(&QueryOp::GroupAgg {
            table: sample_table(),
            spec: GroupAggSpec {
                pred: Pred::StrCmp {
                    col: 2,
                    op: CmpOp::Eq,
                    lit: b"x".as_slice().into(),
                },
                group_by: vec![2, 0],
                aggs: vec![AggSpec::sum(Expr::Case {
                    when: Box::new(Pred::Const(true)),
                    then: Box::new(Expr::col(1)),
                    otherwise: Box::new(Expr::lit(0)),
                })],
            },
        });
    }

    #[test]
    fn join_round_trips_both_outputs() {
        let build = TableRef {
            first_lba: 0,
            num_pages: 5,
            schema: sample_schema(),
            layout: Layout::Nsm,
        };
        for output in [
            JoinOutput::Project(vec![ColRef::Probe(1), ColRef::Build(0)]),
            JoinOutput::Aggregate(vec![AggSpec::sum(Expr::col(3))]),
        ] {
            assert_round_trip(&QueryOp::Join {
                probe: sample_table(),
                spec: JoinSpec {
                    build: BuildSide {
                        table: build.clone(),
                        key_col: 0,
                        payload: vec![1, 2],
                    },
                    probe_key: 0,
                    probe_pred: Pred::between_exclusive(1, -5, 5),
                    filter_first: true,
                    output,
                },
            });
        }
    }

    #[test]
    fn truncation_at_every_point_is_an_error_not_a_panic() {
        let op = QueryOp::ScanAgg {
            table: sample_table(),
            spec: ScanAggSpec {
                pred: Pred::Cmp(CmpOp::Ge, Expr::col(0), Expr::lit(7)),
                aggs: vec![AggSpec::sum(Expr::col(1))],
            },
        };
        let bytes = encode_op(&op);
        for cut in 0..bytes.len() {
            assert!(
                decode_op(&bytes[..cut]).is_err(),
                "prefix of length {cut} decoded successfully"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let op = QueryOp::Scan {
            table: sample_table(),
            spec: ScanSpec {
                pred: Pred::Const(true),
                project: vec![0],
            },
        };
        let mut bytes = encode_op(&op);
        bytes.push(0);
        assert_eq!(decode_op(&bytes).unwrap_err(), WireError::TrailingBytes(1));
    }

    #[test]
    fn bad_tags_and_lengths_rejected() {
        assert_eq!(decode_op(&[9]).unwrap_err(), WireError::BadTag(9));
        assert_eq!(decode_op(&[]).unwrap_err(), WireError::Truncated);
        // Huge schema length.
        let mut bytes = vec![0u8]; // Scan
        bytes.extend_from_slice(&42u64.to_le_bytes()); // first_lba
        bytes.extend_from_slice(&1u64.to_le_bytes()); // num_pages
        bytes.push(0); // layout NSM
        bytes.extend_from_slice(&(u64::MAX).to_le_bytes()); // column count
        assert!(matches!(decode_op(&bytes), Err(WireError::BadLength(_))));
    }

    #[test]
    fn depth_bomb_rejected() {
        // NOT(NOT(NOT(... Const ...))) deeper than MAX_DEPTH.
        let mut pred = Pred::Const(true);
        for _ in 0..200 {
            pred = Pred::Not(Box::new(pred));
        }
        let op = QueryOp::Scan {
            table: sample_table(),
            spec: ScanSpec {
                pred,
                project: vec![0],
            },
        };
        let bytes = encode_op(&op);
        assert_eq!(decode_op(&bytes).unwrap_err(), WireError::TooDeep);
    }

    #[test]
    fn decoded_op_validates_like_the_original() {
        let op = QueryOp::ScanAgg {
            table: sample_table(),
            spec: ScanAggSpec {
                pred: Pred::Cmp(CmpOp::Lt, Expr::col(0), Expr::lit(1)),
                aggs: vec![AggSpec::sum(Expr::col(1))],
            },
        };
        let back = decode_op(&encode_op(&op)).unwrap();
        assert!(back.validate().is_ok());
    }
}
