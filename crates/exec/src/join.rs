//! Simple hash join: build table, joined-row view, and the probe kernel.
//!
//! The paper uses "a simple hash join algorithm that builds a hash table on
//! the \[small\] table" (Section 4.2.2.1). The build side's payload columns
//! are materialized as fixed-width records so the joined row can expose raw
//! field bytes without re-encoding per probe.

use crate::kernels::{count_tuples, page_reader};
use crate::spec::{BuildSide, ColRef, JoinOutput, JoinSpec};
use crate::work::WorkCounts;
use smartssd_storage::expr::{AggState, EvalCounts};
use smartssd_storage::{PageBuf, RowAccessor, Schema, Tuple};
use std::collections::HashMap;
use std::sync::Arc;

/// An in-memory hash table over the build side of a join.
pub struct JoinHashTable {
    payload_schema: Arc<Schema>,
    payload_width: usize,
    /// Flat payload records, `payload_width` bytes each.
    payload_data: Vec<u8>,
    /// key -> indexes of matching payload records (duplicates allowed).
    index: HashMap<i64, Vec<u32>>,
    entries: u64,
}

impl JoinHashTable {
    /// Builds the table from the build side's pages.
    pub fn build(pages: &[PageBuf], build: &BuildSide, w: &mut WorkCounts) -> JoinHashTable {
        let schema = &build.table.schema;
        let payload_schema = build.payload_schema();
        let payload_width = payload_schema.tuple_width();
        let mut ht = JoinHashTable {
            payload_schema,
            payload_width,
            payload_data: Vec::new(),
            index: HashMap::new(),
            entries: 0,
        };
        for page in pages {
            let r = page_reader(page, schema);
            w.pages += 1;
            count_tuples(w, r.layout(), r.num_rows() as u64);
            for row in 0..r.num_rows() {
                let key = r.i64_at(row, build.key_col);
                w.values += 1 + build.payload.len() as u64;
                let idx = ht.entries as u32;
                for &c in &build.payload {
                    ht.payload_data.extend_from_slice(r.field(row, c));
                }
                ht.index.entry(key).or_default().push(idx);
                ht.entries += 1;
                w.hash_builds += 1;
            }
        }
        ht
    }

    /// Number of build rows inserted.
    pub fn len(&self) -> u64 {
        self.entries
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Approximate resident size in bytes (payload + index), used by the
    /// device runtime to enforce its memory grant.
    pub fn memory_bytes(&self) -> u64 {
        self.payload_data.len() as u64 + self.index.len() as u64 * 48
    }

    /// Payload record `idx` as raw bytes.
    fn payload(&self, idx: u32) -> &[u8] {
        let start = idx as usize * self.payload_width;
        &self.payload_data[start..start + self.payload_width]
    }

    /// Matching payload indexes for a key.
    pub fn lookup(&self, key: i64) -> &[u32] {
        self.index.get(&key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Schema of the payload records.
    pub fn payload_schema(&self) -> &Arc<Schema> {
        &self.payload_schema
    }
}

/// A joined row: probe columns first, then build payload columns. Implements
/// [`RowAccessor`] so aggregate expressions (Q14's `CASE WHEN p_type LIKE
/// 'PROMO%' ...`) evaluate over it like over any page.
pub struct JoinedRow<'a, R: RowAccessor> {
    probe: &'a R,
    probe_row: usize,
    payload: &'a [u8],
    payload_schema: &'a Schema,
    joined_schema: &'a Schema,
}

impl<R: RowAccessor> RowAccessor for JoinedRow<'_, R> {
    fn schema(&self) -> &Schema {
        self.joined_schema
    }

    fn num_rows(&self) -> usize {
        1
    }

    #[inline]
    fn field(&self, _row: usize, col: usize) -> &[u8] {
        let n_probe = self.probe.schema().len();
        if col < n_probe {
            self.probe.field(self.probe_row, col)
        } else {
            let c = col - n_probe;
            let off = self.payload_schema.offset(c);
            &self.payload[off..off + self.payload_schema.column(c).ty.width()]
        }
    }
}

/// Accumulates join output: materialized rows, or aggregate states, per
/// [`JoinOutput`].
pub struct JoinSink {
    /// Materialized output rows (Project mode).
    pub rows: Vec<Tuple>,
    /// Aggregate states (Aggregate mode), one per spec entry.
    pub aggs: Vec<AggState>,
    /// Join matches produced (diagnostics).
    pub matches: u64,
}

impl JoinSink {
    /// Creates a sink shaped for the spec's output.
    pub fn new(spec: &JoinSpec) -> Self {
        let aggs = match &spec.output {
            JoinOutput::Project(_) => Vec::new(),
            JoinOutput::Aggregate(aggs) => aggs.iter().map(|a| AggState::new(a.func)).collect(),
        };
        Self {
            rows: Vec::new(),
            aggs,
            matches: 0,
        }
    }

    /// Folds another sink (a per-page partial) into this one. Appending
    /// partials in page order reproduces the serial probe's output order
    /// exactly; aggregate merges are exact (integer sums), so parallel
    /// per-page probing stays bit-identical to the serial pass.
    pub fn merge(&mut self, other: JoinSink) {
        self.rows.extend(other.rows);
        for (a, b) in self.aggs.iter_mut().zip(other.aggs.iter()) {
            a.merge(b);
        }
        self.matches += other.matches;
    }
}

/// Probes one page of the probe table against the hash table.
///
/// Respects `spec.filter_first`: the Figure 4 plan filters probe rows before
/// probing; the Figure 6 plan probes every row and filters afterwards.
pub fn probe_page(
    page: &PageBuf,
    probe_schema: &Schema,
    spec: &JoinSpec,
    ht: &JoinHashTable,
    joined_schema: &Schema,
    sink: &mut JoinSink,
    w: &mut WorkCounts,
) {
    let r = page_reader(page, probe_schema);
    w.pages += 1;
    count_tuples(w, r.layout(), r.num_rows() as u64);
    for row in 0..r.num_rows() {
        if spec.filter_first {
            let mut ev = EvalCounts::default();
            let pass = spec.probe_pred.eval_counted(&r, row, &mut ev);
            w.absorb_eval(ev);
            if !pass {
                continue;
            }
        }
        let key = r.i64_at(row, spec.probe_key);
        w.values += 1;
        w.hash_probes += 1;
        let matches = ht.lookup(key);
        if matches.is_empty() {
            continue;
        }
        if !spec.filter_first {
            let mut ev = EvalCounts::default();
            let pass = spec.probe_pred.eval_counted(&r, row, &mut ev);
            w.absorb_eval(ev);
            if !pass {
                continue;
            }
        }
        for &m in matches {
            sink.matches += 1;
            let payload = ht.payload(m);
            match &spec.output {
                JoinOutput::Project(cols) => {
                    let mut t = Tuple::with_capacity(cols.len());
                    let mut bytes = 0u64;
                    for cr in cols {
                        match *cr {
                            ColRef::Probe(c) => {
                                bytes += probe_schema.column(c).ty.width() as u64;
                                t.push(r.datum_at(row, c));
                            }
                            ColRef::Build(c) => {
                                let ps = ht.payload_schema();
                                let off = ps.offset(c);
                                let width = ps.column(c).ty.width();
                                bytes += width as u64;
                                t.push(smartssd_storage::tuple::decode_field(
                                    ps.column(c).ty,
                                    &payload[off..off + width],
                                ));
                            }
                        }
                    }
                    w.values += cols.len() as u64;
                    w.out_tuples += 1;
                    w.out_bytes += bytes;
                    sink.rows.push(t);
                }
                JoinOutput::Aggregate(aggs) => {
                    let jr = JoinedRow {
                        probe: &r,
                        probe_row: row,
                        payload,
                        payload_schema: ht.payload_schema(),
                        joined_schema,
                    };
                    for (a, state) in aggs.iter().zip(sink.aggs.iter_mut()) {
                        let mut ev = EvalCounts::default();
                        let v = a.expr.eval_counted(&jr, 0, &mut ev);
                        w.absorb_eval(ev);
                        state.update(v);
                        w.agg_updates += 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{BuildSide, TableRef};
    use smartssd_storage::expr::{AggSpec, CmpOp, Expr, Pred};
    use smartssd_storage::{DataType, Datum, Layout, TableBuilder, TableImage};

    /// Build table: (id, val) with id 0..10, val = id * 100.
    fn build_table(layout: Layout) -> TableImage {
        let s = Schema::from_pairs(&[("id", DataType::Int32), ("val", DataType::Int64)]);
        let mut b = TableBuilder::new("r", Arc::clone(&s), layout);
        b.extend((0..10).map(|k| vec![Datum::I32(k), Datum::I64(k as i64 * 100)] as Tuple));
        b.finish()
    }

    /// Probe table: (fk, x) with fk = i % 20 (half miss), x = i.
    fn probe_table(layout: Layout, n: i32) -> TableImage {
        let s = Schema::from_pairs(&[("fk", DataType::Int32), ("x", DataType::Int32)]);
        let mut b = TableBuilder::new("s", Arc::clone(&s), layout);
        b.extend((0..n).map(|i| vec![Datum::I32(i % 20), Datum::I32(i)] as Tuple));
        b.finish()
    }

    fn spec_for(build: &TableImage, output: JoinOutput, filter_first: bool) -> JoinSpec {
        JoinSpec {
            build: BuildSide {
                table: TableRef {
                    first_lba: 0,
                    num_pages: build.num_pages() as u64,
                    schema: Arc::clone(build.schema()),
                    layout: build.layout(),
                },
                key_col: 0,
                payload: vec![1],
            },
            probe_key: 0,
            probe_pred: Pred::Cmp(CmpOp::Lt, Expr::col(1), Expr::lit(50)),
            filter_first,
            output,
        }
    }

    fn run_join(filter_first: bool) -> (JoinSink, WorkCounts) {
        let build = build_table(Layout::Nsm);
        let probe = probe_table(Layout::Nsm, 100);
        let spec = spec_for(
            &build,
            JoinOutput::Project(vec![ColRef::Probe(1), ColRef::Build(0)]),
            filter_first,
        );
        let mut w = WorkCounts::default();
        let ht = JoinHashTable::build(build.pages(), &spec.build, &mut w);
        let joined = spec.joined_schema(probe.schema());
        let mut sink = JoinSink::new(&spec);
        for p in probe.pages() {
            probe_page(p, probe.schema(), &spec, &ht, &joined, &mut sink, &mut w);
        }
        (sink, w)
    }

    #[test]
    fn join_matches_nested_loop_reference() {
        let (sink, _) = run_join(true);
        // Reference: probe rows with x < 50 and fk < 10 (fk in build).
        // fk = i % 20 < 10 for i in 0..50 -> i % 20 in 0..10: i in
        // 0..10 and 20..30 and 40..50 => 30 rows.
        assert_eq!(sink.rows.len(), 30);
        for t in &sink.rows {
            let x = t[0].as_i64();
            let val = t[1].as_i64();
            assert!(x < 50);
            assert_eq!(val, (x % 20) * 100);
        }
    }

    #[test]
    fn filter_order_changes_work_not_results() {
        let (a, wa) = run_join(true);
        let (b, wb) = run_join(false);
        assert_eq!(a.rows, b.rows);
        // Filter-first probes only qualifying rows (50); probe-first probes
        // all 100.
        assert!(wa.hash_probes < wb.hash_probes);
        assert_eq!(wb.hash_probes, 100);
    }

    #[test]
    fn duplicate_build_keys_fan_out() {
        // Build with duplicate keys: two rows per id.
        let s = Schema::from_pairs(&[("id", DataType::Int32), ("val", DataType::Int64)]);
        let mut b = TableBuilder::new("r", Arc::clone(&s), Layout::Nsm);
        for k in 0..3 {
            b.push(vec![Datum::I32(k), Datum::I64(k as i64)]);
            b.push(vec![Datum::I32(k), Datum::I64(k as i64 + 1000)]);
        }
        let build = b.finish();
        let probe = probe_table(Layout::Nsm, 3);
        let spec = spec_for(
            &build,
            JoinOutput::Project(vec![ColRef::Probe(0), ColRef::Build(0)]),
            true,
        );
        let mut w = WorkCounts::default();
        let ht = JoinHashTable::build(build.pages(), &spec.build, &mut w);
        let joined = spec.joined_schema(probe.schema());
        let mut sink = JoinSink::new(&spec);
        for p in probe.pages() {
            probe_page(p, probe.schema(), &spec, &ht, &joined, &mut sink, &mut w);
        }
        // Each of the 3 probe rows matches 2 build rows.
        assert_eq!(sink.rows.len(), 6);
    }

    #[test]
    fn aggregate_output_over_joined_row() {
        let build = build_table(Layout::Pax);
        let probe = probe_table(Layout::Pax, 40);
        // SUM(probe.x + build.val) over joined schema: x is col 1,
        // build.val is col 2 (probe has 2 cols).
        let spec = spec_for(
            &build,
            JoinOutput::Aggregate(vec![AggSpec::sum(Expr::col(1).add(Expr::col(2)))]),
            true,
        );
        let mut w = WorkCounts::default();
        let ht = JoinHashTable::build(build.pages(), &spec.build, &mut w);
        let joined = spec.joined_schema(probe.schema());
        let mut sink = JoinSink::new(&spec);
        for p in probe.pages() {
            probe_page(p, probe.schema(), &spec, &ht, &joined, &mut sink, &mut w);
        }
        // Reference: i in 0..40, fk = i%20 < 10, x=i<50 always true.
        let expected: i128 = (0..40)
            .filter(|i| i % 20 < 10)
            .map(|i| i as i128 + ((i % 20) as i128 * 100))
            .sum();
        assert_eq!(sink.aggs[0].finish(), expected);
        assert!(w.agg_updates > 0);
    }

    #[test]
    fn hash_table_accounting() {
        let build = build_table(Layout::Nsm);
        let spec = spec_for(&build, JoinOutput::Project(vec![]), true);
        let mut w = WorkCounts::default();
        let ht = JoinHashTable::build(build.pages(), &spec.build, &mut w);
        assert_eq!(ht.len(), 10);
        assert!(!ht.is_empty());
        assert!(ht.memory_bytes() > 0);
        assert_eq!(w.hash_builds, 10);
        assert_eq!(ht.lookup(3).len(), 1);
        assert!(ht.lookup(99).is_empty());
    }
}
