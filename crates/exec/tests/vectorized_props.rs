//! Differential property tests: the vectorized kernels must agree with the
//! tuple-at-a-time reference kernels *exactly* — same output rows, same
//! aggregate states, same group tables, and bit-identical [`WorkCounts`]
//! receipts — on arbitrary schemas, layouts, row data, predicates,
//! projections, aggregates, and grouping keys. The receipts feed the
//! simulated cost model, so any divergence would silently change reported
//! timings; equality here is what makes the vectorization a pure
//! wall-clock optimization.

use proptest::prelude::*;
use smartssd_exec::kernels::{
    group_table_rows, scan_agg_page, scan_group_agg_page, scan_page, GroupTable,
};
use smartssd_exec::reference::{
    ref_group_table_rows, scan_agg_page_rowwise, scan_group_agg_page_rowwise, scan_page_rowwise,
    RefGroupTable,
};
use smartssd_exec::spec::{GroupAggSpec, ScanAggSpec, ScanSpec};
use smartssd_exec::WorkCounts;
use smartssd_storage::expr::{AggSpec, AggState, CmpOp, Expr, Pred};
use smartssd_storage::{DataType, Datum, Layout, Schema, TableBuilder, Tuple};
use std::sync::Arc;

/// An arbitrary column type. Char widths stay small so string literals of
/// comparable width are easy to generate.
fn arb_type() -> impl Strategy<Value = DataType> {
    prop_oneof![
        Just(DataType::Int32),
        Just(DataType::Int64),
        (1u16..8).prop_map(DataType::Char),
    ]
}

/// A schema of 1..6 columns whose first column is always numeric, so every
/// generated schema has at least one column usable in arithmetic.
fn arb_schema() -> impl Strategy<Value = Arc<Schema>> {
    prop::collection::vec(arb_type(), 0..5).prop_map(|mut types| {
        types.insert(0, DataType::Int64);
        let cols: Vec<(String, DataType)> = types
            .into_iter()
            .enumerate()
            .map(|(i, t)| (format!("c{i}"), t))
            .collect();
        let pairs: Vec<(&str, DataType)> = cols.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        Schema::from_pairs(&pairs)
    })
}

/// A datum for one column. Values stay in a narrow band so comparisons hit
/// all three orderings and products never overflow.
fn arb_datum(ty: DataType) -> BoxedStrategy<Datum> {
    match ty {
        DataType::Int32 => (-20i32..=20).prop_map(Datum::I32).boxed(),
        DataType::Int64 => (-20i64..=20).prop_map(Datum::I64).boxed(),
        DataType::Char(w) => prop::collection::vec(b'a'..=b'd', 0..=w as usize)
            .prop_map(|v| Datum::Str(v.into()))
            .boxed(),
    }
}

/// Column indices by kind.
fn split_cols(schema: &Schema) -> (Vec<usize>, Vec<(usize, u16)>) {
    let mut numeric = Vec::new();
    let mut chars = Vec::new();
    for (i, c) in schema.columns().iter().enumerate() {
        match c.ty {
            DataType::Int32 | DataType::Int64 => numeric.push(i),
            DataType::Char(w) => chars.push((i, w)),
        }
    }
    (numeric, chars)
}

/// Picks one element of a non-empty list.
fn pick<T: Clone + std::fmt::Debug + 'static>(items: Vec<T>) -> BoxedStrategy<T> {
    let n = items.len();
    (0..n).prop_map(move |i| items[i].clone()).boxed()
}

fn arb_cmp_op() -> BoxedStrategy<CmpOp> {
    pick(vec![
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ])
}

/// An arbitrary integer expression over the numeric columns.
fn arb_expr(numeric: Vec<usize>, chars: Vec<(usize, u16)>, depth: u32) -> BoxedStrategy<Expr> {
    let lit = (-20i64..=20).prop_map(Expr::Lit).boxed();
    let leaf = if numeric.is_empty() {
        lit
    } else {
        prop_oneof![pick(numeric.clone()).prop_map(Expr::Col), lit].boxed()
    };
    if depth == 0 {
        return leaf;
    }
    let sub = arb_expr(numeric.clone(), chars.clone(), depth - 1);
    let sub2 = arb_expr(numeric.clone(), chars.clone(), depth - 1);
    let case = (
        arb_pred(numeric.clone(), chars.clone(), depth - 1),
        arb_expr(numeric.clone(), chars.clone(), 0),
        arb_expr(numeric, chars, 0),
    );
    prop_oneof![
        leaf,
        (sub, sub2).prop_map(|(a, b)| Expr::Add(Box::new(a), Box::new(b))),
        arb_expr_pair_mul(depth - 1),
        case.prop_map(|(when, then, otherwise)| Expr::Case {
            when: Box::new(when),
            then: Box::new(then),
            otherwise: Box::new(otherwise),
        }),
    ]
    .boxed()
}

/// Literal-only multiply so nested arithmetic cannot overflow `i64`.
fn arb_expr_pair_mul(_depth: u32) -> BoxedStrategy<Expr> {
    ((-20i64..=20), (-20i64..=20))
        .prop_map(|(a, b)| Expr::Mul(Box::new(Expr::Lit(a)), Box::new(Expr::Lit(b))))
        .boxed()
}

/// An arbitrary predicate exercising every `Pred` variant the schema
/// supports.
fn arb_pred(numeric: Vec<usize>, chars: Vec<(usize, u16)>, depth: u32) -> BoxedStrategy<Pred> {
    let cmp = (
        arb_cmp_op(),
        arb_expr(numeric.clone(), chars.clone(), depth.min(1)),
        arb_expr(numeric.clone(), chars.clone(), depth.min(1)),
    )
        .prop_map(|(op, a, b)| Pred::Cmp(op, a, b))
        .boxed();
    let mut leaves: Vec<(u32, BoxedStrategy<Pred>)> =
        vec![(3, cmp), (1, any::<bool>().prop_map(Pred::Const).boxed())];
    if !chars.is_empty() {
        let strcmp = (
            pick(chars.clone()),
            arb_cmp_op(),
            prop::collection::vec(b'a'..=b'd', 0..3),
        )
            .prop_map(|((col, _), op, lit)| Pred::StrCmp {
                col,
                op,
                lit: lit.into(),
            })
            .boxed();
        let like = (
            pick(chars.clone()),
            prop::collection::vec(b'a'..=b'd', 0..3),
        )
            .prop_map(|((col, _), prefix)| Pred::LikePrefix {
                col,
                prefix: prefix.into(),
            })
            .boxed();
        leaves.push((2, strcmp));
        leaves.push((2, like));
    }
    let leaf = Union::new(leaves).boxed();
    if depth == 0 {
        return leaf;
    }
    let sub = || arb_pred(numeric.clone(), chars.clone(), depth - 1);
    prop_oneof![
        leaf,
        prop::collection::vec(sub(), 0..3).prop_map(Pred::And),
        prop::collection::vec(sub(), 0..3).prop_map(Pred::Or),
        sub().prop_map(|p| Pred::Not(Box::new(p))),
    ]
    .boxed()
}

/// An arbitrary aggregate list.
fn arb_aggs(numeric: Vec<usize>, chars: Vec<(usize, u16)>) -> BoxedStrategy<Vec<AggSpec>> {
    let one = prop_oneof![
        arb_expr(numeric.clone(), chars.clone(), 1).prop_map(AggSpec::sum),
        Just(AggSpec::count()),
        arb_expr(numeric.clone(), chars.clone(), 1).prop_map(AggSpec::min),
        arb_expr(numeric, chars, 1).prop_map(AggSpec::max),
    ]
    .boxed();
    prop::collection::vec(one, 1..4).boxed()
}

/// Everything one differential case needs.
#[derive(Debug, Clone)]
struct Case {
    schema: Arc<Schema>,
    rows: Vec<Tuple>,
    pred: Pred,
    project: Vec<usize>,
    aggs: Vec<AggSpec>,
    group_by: Vec<usize>,
}

fn arb_case() -> impl Strategy<Value = Case> {
    arb_schema().prop_flat_map(|schema| {
        let (numeric, chars) = split_cols(&schema);
        let per_row: Vec<BoxedStrategy<Datum>> =
            schema.columns().iter().map(|c| arb_datum(c.ty)).collect();
        let all: Vec<usize> = (0..schema.len()).collect();
        let s = Arc::clone(&schema);
        (
            prop::collection::vec(per_row, 1..250),
            arb_pred(numeric.clone(), chars.clone(), 2),
            prop::collection::vec(pick(all.clone()), 1..4),
            arb_aggs(numeric, chars),
            prop::collection::vec(pick(all), 1..3),
        )
            .prop_map(move |(rows, pred, project, aggs, mut group_by)| {
                // Duplicate grouping columns would collide in the projected
                // key schema; keep first occurrences.
                let mut seen = [false; 16];
                group_by.retain(|&c| !std::mem::replace(&mut seen[c], true));
                Case {
                    schema: Arc::clone(&s),
                    rows,
                    pred,
                    project,
                    aggs,
                    group_by,
                }
            })
    })
}

fn build(case: &Case, layout: Layout) -> smartssd_storage::TableImage {
    let mut b = TableBuilder::new("t", Arc::clone(&case.schema), layout);
    b.extend(case.rows.iter().cloned());
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `scan_page` ≡ `scan_page_rowwise`: rows, qualifying count, receipts.
    #[test]
    fn scan_matches_reference(case in arb_case()) {
        for layout in [Layout::Nsm, Layout::Pax] {
            let img = build(&case, layout);
            let spec = ScanSpec { pred: case.pred.clone(), project: case.project.clone() };
            let (mut out_v, mut w_v) = (Vec::new(), WorkCounts::default());
            let (mut out_r, mut w_r) = (Vec::new(), WorkCounts::default());
            let mut q_v = 0;
            let mut q_r = 0;
            for p in img.pages() {
                q_v += scan_page(p, img.schema(), &spec, &mut out_v, &mut w_v);
                q_r += scan_page_rowwise(p, img.schema(), &spec, &mut out_r, &mut w_r);
            }
            prop_assert_eq!(q_v, q_r);
            prop_assert_eq!(&out_v, &out_r);
            prop_assert_eq!(w_v, w_r);
        }
    }

    /// `scan_agg_page` ≡ `scan_agg_page_rowwise`: states and receipts.
    #[test]
    fn scan_agg_matches_reference(case in arb_case()) {
        for layout in [Layout::Nsm, Layout::Pax] {
            let img = build(&case, layout);
            let spec = ScanAggSpec { pred: case.pred.clone(), aggs: case.aggs.clone() };
            let mut st_v: Vec<AggState> =
                spec.aggs.iter().map(|a| AggState::new(a.func)).collect();
            let mut st_r = st_v.clone();
            let (mut w_v, mut w_r) = (WorkCounts::default(), WorkCounts::default());
            for p in img.pages() {
                scan_agg_page(p, img.schema(), &spec, &mut st_v, &mut w_v);
                scan_agg_page_rowwise(p, img.schema(), &spec, &mut st_r, &mut w_r);
            }
            prop_assert_eq!(&st_v, &st_r);
            prop_assert_eq!(w_v, w_r);
        }
    }

    /// `scan_group_agg_page` ≡ `scan_group_agg_page_rowwise`: group count,
    /// materialized rows in key order, and receipts. This pins the
    /// open-addressing table to the `BTreeMap` reference.
    #[test]
    fn group_agg_matches_reference(case in arb_case()) {
        for layout in [Layout::Nsm, Layout::Pax] {
            let img = build(&case, layout);
            let spec = GroupAggSpec {
                pred: case.pred.clone(),
                group_by: case.group_by.clone(),
                aggs: case.aggs.clone(),
            };
            let mut acc_v = GroupTable::new();
            let mut acc_r = RefGroupTable::new();
            let (mut w_v, mut w_r) = (WorkCounts::default(), WorkCounts::default());
            for p in img.pages() {
                scan_group_agg_page(p, img.schema(), &spec, &mut acc_v, &mut w_v);
                scan_group_agg_page_rowwise(p, img.schema(), &spec, &mut acc_r, &mut w_r);
            }
            prop_assert_eq!(acc_v.len(), acc_r.len());
            let key_schema = spec.key_schema(img.schema());
            prop_assert_eq!(
                group_table_rows(&acc_v, &key_schema),
                ref_group_table_rows(&acc_r, &key_schema)
            );
            prop_assert_eq!(w_v, w_r);
        }
    }
}
