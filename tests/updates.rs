//! Integration tests for the update/staleness machinery from the paper's
//! Discussion section: in-place table replacement (with trim of the old
//! extent), dirty tracking, and the pushdown-forbidden-while-dirty rule.

use smartssd::{DeviceKind, Layout, Route, RunOptions, System, SystemBuilder};
use smartssd_exec::spec::ScanAggSpec;
use smartssd_query::{Finalize, OpTemplate, Query};
use smartssd_storage::expr::{AggSpec, Expr, Pred};
use smartssd_storage::{DataType, Datum, Schema, Tuple};
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Schema::from_pairs(&[("k", DataType::Int32), ("v", DataType::Int64)])
}

fn rows(n: i32, scale: i64) -> impl Iterator<Item = Tuple> {
    (0..n).map(move |k| vec![Datum::I32(k), Datum::I64(k as i64 * scale)])
}

fn sum_query() -> Query {
    Query {
        name: "sum v".into(),
        op: OpTemplate::ScanAgg {
            table: "t".into(),
            spec: ScanAggSpec {
                pred: Pred::Const(true),
                aggs: vec![AggSpec::sum(Expr::col(1)), AggSpec::count()],
            },
        },
        finalize: Finalize::AggRow,
    }
}

fn smart_system(n: i32) -> System {
    let mut sys = SystemBuilder::new(DeviceKind::SmartSsd, Layout::Pax).build();
    sys.load_table_rows("t", &schema(), rows(n, 1)).unwrap();
    sys.finish_load();
    sys
}

#[test]
fn update_replaces_contents_on_both_routes() {
    let mut sys = smart_system(10_000);
    let before = sys.run(&sum_query(), RunOptions::default()).unwrap();
    assert_eq!(before.result.agg_values[0], (0..10_000i128).sum::<i128>());
    // Replace with scaled values and fewer rows.
    sys.update_table_rows("t", rows(5_000, 10)).unwrap();
    for route in [Route::Device, Route::Host] {
        sys.clear_cache();
        let after = sys.run(&sum_query(), RunOptions::routed(route)).unwrap();
        assert_eq!(
            after.result.agg_values[0],
            (0..5_000i128).map(|k| k * 10).sum::<i128>(),
            "route {route:?} read stale data"
        );
        assert_eq!(after.result.agg_values[1], 5_000);
    }
}

#[test]
fn update_trims_old_extent_for_gc() {
    let mut sys = smart_system(50_000);
    // Several updates in a row keep re-pointing the catalog and trimming;
    // the device must not leak space (GC reclaims trimmed extents).
    for round in 1..=4 {
        sys.update_table_rows("t", rows(50_000, round)).unwrap();
        let r = sys.run(&sum_query(), RunOptions::default()).unwrap();
        assert_eq!(
            r.result.agg_values[0],
            (0..50_000i128).map(|k| k * round as i128).sum::<i128>()
        );
    }
}

#[test]
fn dirty_table_forces_host_route() {
    let mut sys = smart_system(20_000);
    let clean = sys.run(&sum_query(), RunOptions::default()).unwrap();
    assert_eq!(clean.route, Route::Device);
    // Mark dirty: even an explicit device request must be rerouted.
    sys.mark_dirty("t");
    assert!(sys.is_dirty("t"));
    let dirty = sys
        .run(&sum_query(), RunOptions::routed(Route::Device))
        .unwrap();
    assert_eq!(dirty.route, Route::Host, "stale pushdown must be refused");
    assert_eq!(dirty.result.agg_values, clean.result.agg_values);
    // Checkpoint restores pushdown eligibility.
    sys.checkpoint("t").unwrap();
    assert!(!sys.is_dirty("t"));
    let again = sys
        .run(&sum_query(), RunOptions::routed(Route::Device))
        .unwrap();
    assert_eq!(again.route, Route::Device);
}

#[test]
fn checkpoint_of_clean_table_is_noop() {
    let mut sys = smart_system(1_000);
    sys.checkpoint("t").unwrap();
    let r = sys.run(&sum_query(), RunOptions::default()).unwrap();
    assert_eq!(r.route, Route::Device);
}

#[test]
fn dirty_join_input_forces_host_route() {
    let mut sys = SystemBuilder::new(DeviceKind::SmartSsd, Layout::Nsm).build();
    sys.load_table_rows("build", &schema(), rows(500, 1))
        .unwrap();
    sys.load_table_rows("probe", &schema(), rows(2_000, 1))
        .unwrap();
    sys.finish_load();
    let query = Query {
        name: "join".into(),
        op: OpTemplate::Join {
            probe: "probe".into(),
            build: "build".into(),
            build_key: 0,
            build_payload: vec![1],
            probe_key: 0,
            probe_pred: Pred::Const(true),
            filter_first: true,
            output: smartssd_exec::JoinOutput::Project(vec![
                smartssd_exec::ColRef::Probe(0),
                smartssd_exec::ColRef::Build(0),
            ]),
        },
        finalize: Finalize::Rows,
    };
    let clean = sys.run(&query, RunOptions::default()).unwrap();
    assert_eq!(clean.route, Route::Device);
    // Dirtying the *build side* must also block pushdown.
    sys.mark_dirty("build");
    let dirty = sys.run(&query, RunOptions::default()).unwrap();
    assert_eq!(dirty.route, Route::Host);
    assert_eq!(dirty.result.rows, clean.result.rows);
}

#[test]
fn updates_work_on_plain_ssd_too() {
    let mut sys = SystemBuilder::new(DeviceKind::Ssd, Layout::Nsm).build();
    sys.load_table_rows("t", &schema(), rows(3_000, 2)).unwrap();
    sys.finish_load();
    sys.update_table_rows("t", rows(1_000, 7)).unwrap();
    let r = sys.run(&sum_query(), RunOptions::default()).unwrap();
    assert_eq!(
        r.result.agg_values[0],
        (0..1_000i128).map(|k| k * 7).sum::<i128>()
    );
}
