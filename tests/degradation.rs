//! Differential property tests of graceful degradation under device
//! failure domains.
//!
//! The load-bearing invariants: firmware crashes, reset downtime,
//! circuit-breaker routing, bounded admission, and deadlines are *timing
//! and routing* mechanisms — for any fault schedule, every query that
//! completes must return answers bit-identical to an isolated fault-free
//! run; every arrival must end in exactly one typed outcome; and a fixed
//! seed must replay to the bit.

use proptest::prelude::*;
use smartssd::{
    ArrivalOutcome, BreakerPolicy, DeviceKind, Layout, Route, RoutePolicy, RunOptions, SimTime,
    System, SystemBuilder, Workload, WorkloadOptions, WorkloadReport,
};
use smartssd_exec::spec::ScanAggSpec;
use smartssd_query::{Finalize, OpTemplate, Query};
use smartssd_storage::expr::{AggSpec, CmpOp, Expr, Pred};
use smartssd_storage::{DataType, Datum, Schema, Tuple};
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Schema::from_pairs(&[("a", DataType::Int32), ("b", DataType::Int64)])
}

prop_compose! {
    fn arb_row()(a in -1000i32..1000, b in -1_000_000i64..1_000_000) -> Tuple {
        vec![Datum::I32(a), Datum::I64(b)]
    }
}

/// A Q6-shaped aggregation whose predicate varies per query, so concurrent
/// queries in one workload produce distinct answers.
fn agg_query(cutoff: i64) -> Query {
    Query {
        name: format!("agg<{cutoff}"),
        op: OpTemplate::ScanAgg {
            table: "t".into(),
            spec: ScanAggSpec {
                pred: Pred::Cmp(CmpOp::Lt, Expr::col(0), Expr::lit(cutoff)),
                aggs: vec![AggSpec::count(), AggSpec::sum(Expr::col(1))],
            },
        },
        finalize: Finalize::AggRow,
    }
}

/// Injected fault schedule for one generated system.
#[derive(Debug, Clone, Copy)]
struct FaultPlan {
    crash_rate: u32,
    ecc_retry_rate: u32,
    reset_latency_us: u64,
}

fn arb_fault_plan() -> impl Strategy<Value = FaultPlan> {
    (
        prop_oneof![
            Just(0u32),
            Just(u32::MAX / 8),
            Just(u32::MAX / 2),
            Just(u32::MAX),
        ],
        prop_oneof![Just(0u32), Just(u32::MAX / 64)],
        50u64..3_000,
    )
        .prop_map(|(crash_rate, ecc_retry_rate, reset_latency_us)| FaultPlan {
            crash_rate,
            ecc_retry_rate,
            reset_latency_us,
        })
}

fn build_sys(rows: &[Tuple], plan: FaultPlan, breaker: bool) -> System {
    let b = SystemBuilder::new(DeviceKind::SmartSsd, Layout::Pax)
        .fault_rates(plan.ecc_retry_rate, 0, 0)
        .crash_faults(plan.crash_rate, SimTime::from_micros(plan.reset_latency_us))
        .tweak(|c| c.smart.max_sessions = 2);
    let b = if breaker {
        b.breaker(BreakerPolicy::enabled())
    } else {
        b
    };
    let mut sys = b.build();
    sys.load_table_rows("t", &schema(), rows.to_vec()).unwrap();
    sys.finish_load();
    sys
}

/// One generated workload query: predicate cutoff and arrival gap from the
/// previous query.
type Item = (i64, u64);

fn workload_of(items: &[Item]) -> Workload {
    let mut w = Workload::new();
    let mut at = SimTime::ZERO;
    for &(cutoff, gap) in items {
        at += SimTime::from_nanos(gap);
        w.push(agg_query(cutoff), RoutePolicy::Natural, at);
    }
    w
}

fn run_degraded(
    rows: &[Tuple],
    items: &[Item],
    plan: FaultPlan,
    breaker: bool,
    opts: WorkloadOptions,
) -> WorkloadReport {
    build_sys(rows, plan, breaker)
        .run_workload(&workload_of(items), opts)
        .expect("crash/ECC faults and shedding must never abort the workload")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Under any crash/ECC schedule, with the breaker on or off, every
    /// query that *completes* returns answers bit-identical to an isolated
    /// fault-free host run of the same query.
    #[test]
    fn completed_answers_survive_any_fault_schedule(
        rows in prop::collection::vec(arb_row(), 1..300),
        items in prop::collection::vec((-1000i64..1000, 0u64..2_000_000), 1..6),
        plan in arb_fault_plan(),
        breaker in any::<bool>(),
    ) {
        let rep = run_degraded(&rows, &items, plan, breaker, WorkloadOptions::default());
        // No admission bound, no deadline: every arrival completes.
        prop_assert_eq!(rep.completions.len(), items.len());
        let mut clean = build_sys(&rows, FaultPlan { crash_rate: 0, ecc_retry_rate: 0, reset_latency_us: 100 }, false);
        for c in &rep.completions {
            let isolated = clean
                .run(&agg_query(items[c.index].0), RunOptions::routed(Route::Host))
                .expect("fault-free isolated run");
            prop_assert_eq!(&c.result.agg_values, &isolated.result.agg_values,
                "query {} diverged from its isolated run", c.index);
        }
    }

    /// The circuit breaker changes routing and timing, never answers:
    /// the same faulty workload with the breaker off vs on completes the
    /// same queries with bit-identical aggregates.
    #[test]
    fn breaker_changes_routing_never_answers(
        rows in prop::collection::vec(arb_row(), 1..300),
        items in prop::collection::vec((-1000i64..1000, 0u64..2_000_000), 1..6),
        plan in arb_fault_plan(),
    ) {
        let off = run_degraded(&rows, &items, plan, false, WorkloadOptions::default());
        let on = run_degraded(&rows, &items, plan, true, WorkloadOptions::default());
        prop_assert_eq!(off.completions.len(), on.completions.len());
        for (a, b) in off.completions.iter().zip(on.completions.iter()) {
            prop_assert_eq!(a.index, b.index);
            prop_assert_eq!(&a.result.agg_values, &b.result.agg_values);
        }
    }

    /// Outcome conservation: with a bounded queue and a deadline, every
    /// arrival lands in exactly one typed outcome, in submission order,
    /// and the counts add up.
    #[test]
    fn every_arrival_has_exactly_one_outcome(
        rows in prop::collection::vec(arb_row(), 1..200),
        items in prop::collection::vec((-1000i64..1000, 0u64..500_000), 1..8),
        plan in arb_fault_plan(),
        breaker in any::<bool>(),
        queue_bound in 0usize..3,
        deadline_us in 1u64..100_000,
    ) {
        let opts = WorkloadOptions::new()
            .queue_bound(queue_bound)
            .deadline(SimTime::from_micros(deadline_us));
        let rep = run_degraded(&rows, &items, plan, breaker, opts);
        prop_assert_eq!(rep.outcomes.len(), items.len());
        for (i, o) in rep.outcomes.iter().enumerate() {
            prop_assert_eq!(o.index(), i, "outcomes must be in submission order");
        }
        let completed = rep.outcomes.iter().filter(|o| matches!(o, ArrivalOutcome::Completed(_))).count();
        let rejected = rep.outcomes.iter().filter(|o| matches!(o, ArrivalOutcome::Rejected(_))).count();
        let missed = rep.outcomes.iter().filter(|o| matches!(o, ArrivalOutcome::DeadlineMissed(_))).count();
        let canceled = rep.outcomes.iter().filter(|o| matches!(o, ArrivalOutcome::Canceled(_))).count();
        let failed = rep.outcomes.iter().filter(|o| matches!(o, ArrivalOutcome::Failed(_))).count();
        prop_assert_eq!(completed + rejected + missed + canceled + failed, items.len());
        prop_assert_eq!(canceled, 0, "nothing here sets cancel_at");
        prop_assert_eq!(failed, 0, "crash/ECC faults are recoverable");
        prop_assert_eq!(completed, rep.completions.len());
        prop_assert_eq!(rejected as u64, rep.rejected);
        prop_assert_eq!(missed as u64, rep.deadline_missed);
        // Shed queries still return answers for everyone else, identical
        // to isolated fault-free runs.
        let mut clean = build_sys(&rows, FaultPlan { crash_rate: 0, ecc_retry_rate: 0, reset_latency_us: 100 }, false);
        for c in &rep.completions {
            let isolated = clean
                .run(&agg_query(items[c.index].0), RunOptions::routed(Route::Host))
                .expect("fault-free isolated run");
            prop_assert_eq!(&c.result.agg_values, &isolated.result.agg_values);
        }
    }

    /// Determinism: the same seed, fault schedule, and options replay
    /// bit-exactly — outcomes, timings, counters, and breaker transitions.
    #[test]
    fn fixed_seeds_replay_bit_exact(
        rows in prop::collection::vec(arb_row(), 1..200),
        items in prop::collection::vec((-1000i64..1000, 0u64..2_000_000), 1..6),
        plan in arb_fault_plan(),
        breaker in any::<bool>(),
    ) {
        let opts = WorkloadOptions::new()
            .queue_bound(1)
            .deadline(SimTime::from_millis(50));
        let a = run_degraded(&rows, &items, plan, breaker, opts.clone());
        let b = run_degraded(&rows, &items, plan, breaker, opts);
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.throughput_qps.to_bits(), b.throughput_qps.to_bits());
        prop_assert_eq!(a.rejected, b.rejected);
        prop_assert_eq!(a.deadline_missed, b.deadline_missed);
        prop_assert_eq!(a.faults, b.faults);
        prop_assert_eq!(a.breaker_transitions.len(), b.breaker_transitions.len());
        for (x, y) in a.breaker_transitions.iter().zip(b.breaker_transitions.iter()) {
            prop_assert_eq!(x.at, y.at);
            prop_assert_eq!(x.to, y.to);
        }
        prop_assert_eq!(a.completions.len(), b.completions.len());
        for (x, y) in a.completions.iter().zip(b.completions.iter()) {
            prop_assert_eq!(x.index, y.index);
            prop_assert_eq!(x.finished_at, y.finished_at);
            prop_assert_eq!(&x.result.agg_values, &y.result.agg_values);
        }
    }
}
