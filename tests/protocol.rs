//! Integration tests of the session protocol and failure handling across
//! the device/host boundary.

use smartssd::{DeviceKind, Layout, Route, RunOptions, SystemConfig};
use smartssd_device::{DeviceConfig, DeviceError, GetResponse, SmartSsd};
use smartssd_exec::spec::{ScanAggSpec, ScanSpec};
use smartssd_exec::QueryOp;
use smartssd_flash::FlashConfig;
use smartssd_query::{Finalize, OpTemplate, PlannerConfig, PlannerInputs, Query};
use smartssd_sim::SimTime;
use smartssd_storage::expr::{AggSpec, CmpOp, Expr, Pred};
use smartssd_storage::{DataType, Datum, Schema, Tuple};
use std::sync::Arc;

fn small_schema() -> Arc<Schema> {
    Schema::from_pairs(&[("k", DataType::Int32), ("v", DataType::Int64)])
}

fn rows(n: i32) -> impl Iterator<Item = Tuple> {
    (0..n).map(|k| vec![Datum::I32(k), Datum::I64(k as i64)])
}

fn loaded_device() -> (SmartSsd, smartssd_exec::TableRef) {
    let mut dev = SmartSsd::new(FlashConfig::default(), DeviceConfig::default());
    let mut b = smartssd_storage::TableBuilder::new("t", small_schema(), Layout::Pax);
    b.extend(rows(50_000));
    let img = b.finish();
    let tref = dev.load_table(&img, 0).unwrap();
    dev.reset_timing();
    (dev, tref)
}

#[test]
fn open_get_close_full_lifecycle() {
    let (mut dev, tref) = loaded_device();
    let op = QueryOp::ScanAgg {
        table: tref,
        spec: ScanAggSpec {
            pred: Pred::Const(true),
            aggs: vec![AggSpec::count()],
        },
    };
    let sid = dev.open(&op, SimTime::ZERO).unwrap();
    // Immediately polling reports Running with a readiness hint.
    let ready = match dev.get(sid, SimTime::ZERO).unwrap() {
        GetResponse::Running { ready_at } => ready_at,
        other => panic!("expected Running, got {other:?}"),
    };
    // Polling at readiness yields the batch.
    match dev.get(sid, ready).unwrap() {
        GetResponse::Batch(b) => {
            assert_eq!(b.aggs.unwrap()[0].finish(), 50_000);
        }
        other => panic!("expected Batch, got {other:?}"),
    }
    // Then Done, repeatedly (idempotent).
    assert!(matches!(dev.get(sid, ready).unwrap(), GetResponse::Done));
    assert!(matches!(dev.get(sid, ready).unwrap(), GetResponse::Done));
    // CLOSE clears the state; the id is no longer valid.
    dev.close(sid).unwrap();
    assert_eq!(
        dev.get(sid, ready).unwrap_err(),
        DeviceError::UnknownSession(sid.0)
    );
}

#[test]
fn results_survive_interleaved_sessions() {
    let (mut dev, tref) = loaded_device();
    let count_op = QueryOp::ScanAgg {
        table: tref.clone(),
        spec: ScanAggSpec {
            pred: Pred::Const(true),
            aggs: vec![AggSpec::count()],
        },
    };
    let sum_op = QueryOp::ScanAgg {
        table: tref,
        spec: ScanAggSpec {
            pred: Pred::Cmp(CmpOp::Lt, Expr::col(0), Expr::lit(10)),
            aggs: vec![AggSpec::sum(Expr::col(1))],
        },
    };
    let s1 = dev.open(&count_op, SimTime::ZERO).unwrap();
    let s2 = dev.open(&sum_op, SimTime::ZERO).unwrap();
    // Drain s2 first even though s1 opened first.
    let t = SimTime::from_secs(100);
    let b2 = match dev.get(s2, t).unwrap() {
        GetResponse::Batch(b) => b,
        other => panic!("{other:?}"),
    };
    assert_eq!(b2.aggs.unwrap()[0].finish(), 45); // 0+..+9
    let b1 = match dev.get(s1, t).unwrap() {
        GetResponse::Batch(b) => b,
        other => panic!("{other:?}"),
    };
    assert_eq!(b1.aggs.unwrap()[0].finish(), 50_000);
    dev.close(s1).unwrap();
    dev.close(s2).unwrap();
}

#[test]
fn memory_grant_rejection_falls_back_to_host_in_system() {
    // A join whose build side exceeds a tiny memory grant: System must
    // transparently rerun on the host and still produce correct rows.
    let mut cfg = SystemConfig::new(DeviceKind::SmartSsd, Layout::Nsm);
    cfg.smart.session_memory_bytes = 2048;
    let mut sys = smartssd::SystemBuilder::from_config(cfg).build();
    sys.load_table_rows("build", &small_schema(), rows(20_000))
        .unwrap();
    sys.load_table_rows("probe", &small_schema(), rows(5_000))
        .unwrap();
    sys.finish_load();
    let query = Query {
        name: "fallback join".into(),
        op: OpTemplate::Join {
            probe: "probe".into(),
            build: "build".into(),
            build_key: 0,
            build_payload: vec![1],
            probe_key: 0,
            probe_pred: Pred::Const(true),
            filter_first: true,
            output: smartssd_exec::JoinOutput::Project(vec![
                smartssd_exec::ColRef::Probe(0),
                smartssd_exec::ColRef::Build(0),
            ]),
        },
        finalize: Finalize::Rows,
    };
    let report = sys.run(&query, RunOptions::default()).unwrap();
    // It ran — on the host.
    assert_eq!(report.route, Route::Host);
    assert_eq!(report.result.rows.len(), 5_000);
}

#[test]
fn validation_failures_surface_as_plan_or_device_errors() {
    let mut sys = smartssd::SystemBuilder::new(DeviceKind::SmartSsd, Layout::Nsm).build();
    sys.load_table_rows("t", &small_schema(), rows(100))
        .unwrap();
    sys.finish_load();
    // Unknown table.
    let q_missing = Query {
        name: "missing".into(),
        op: OpTemplate::Scan {
            table: "nope".into(),
            spec: ScanSpec {
                pred: Pred::Const(true),
                project: vec![0],
            },
        },
        finalize: Finalize::Rows,
    };
    assert!(sys.run(&q_missing, RunOptions::default()).is_err());
    // Bad column index.
    let q_bad_col = Query {
        name: "bad col".into(),
        op: OpTemplate::Scan {
            table: "t".into(),
            spec: ScanSpec {
                pred: Pred::Cmp(CmpOp::Lt, Expr::col(99), Expr::lit(0)),
                project: vec![0],
            },
        },
        finalize: Finalize::Rows,
    };
    assert!(sys.run(&q_bad_col, RunOptions::default()).is_err());
}

#[test]
fn planner_routes_by_residency_end_to_end() {
    let mut sys = smartssd::SystemBuilder::new(DeviceKind::SmartSsd, Layout::Pax).build();
    sys.load_table_rows("t", &small_schema(), rows(200_000))
        .unwrap();
    sys.finish_load();
    let query = Query {
        name: "agg".into(),
        op: OpTemplate::ScanAgg {
            table: "t".into(),
            spec: ScanAggSpec {
                pred: Pred::Cmp(CmpOp::Lt, Expr::col(0), Expr::lit(50)),
                aggs: vec![AggSpec::sum(Expr::col(1))],
            },
        },
        finalize: Finalize::AggRow,
    };
    let planner = PlannerConfig::default();
    let inputs = PlannerInputs {
        selectivity: 0.0005,
        tuples_per_page: 580.0,
        ..PlannerInputs::default()
    };
    // Cold: pushdown.
    let cold = sys
        .run(&query, RunOptions::planned(planner.clone(), inputs.clone()))
        .unwrap();
    assert_eq!(cold.route, Route::Device);
    // Fully cached: the planner must refuse to push down.
    sys.warm_cache("t", 1.0).unwrap();
    let warm = sys
        .run(&query, RunOptions::planned(planner, inputs))
        .unwrap();
    assert_eq!(warm.route, Route::Host);
    assert_eq!(cold.result.agg_values, warm.result.agg_values);
}

#[test]
fn ecc_failures_do_not_corrupt_device_results() {
    // Heavy injected error rates: retries everywhere, same answer.
    let flash = FlashConfig {
        ecc_retry_rate: u32::MAX / 4,
        ecc_fail_rate: u32::MAX / 64,
        ..FlashConfig::default()
    };
    let mut dev = SmartSsd::new(flash, DeviceConfig::default());
    let mut b = smartssd_storage::TableBuilder::new("t", small_schema(), Layout::Nsm);
    b.extend(rows(30_000));
    let img = b.finish();
    let tref = dev.load_table(&img, 0).unwrap();
    dev.reset_timing();
    let op = QueryOp::ScanAgg {
        table: tref,
        spec: ScanAggSpec {
            pred: Pred::Const(true),
            aggs: vec![AggSpec::sum(Expr::col(1)), AggSpec::count()],
        },
    };
    let sid = dev.open(&op, SimTime::ZERO).unwrap();
    let batch = loop {
        match dev.get(sid, SimTime::from_secs(1000)).unwrap() {
            GetResponse::Batch(b) => break b,
            GetResponse::Running { .. } => continue,
            GetResponse::Done => panic!("no batch"),
        }
    };
    let aggs = batch.aggs.unwrap();
    assert_eq!(aggs[1].finish(), 30_000);
    assert_eq!(aggs[0].finish(), (0..30_000i128).sum::<i128>());
    assert!(dev.flash.stats().ecc_retries > 0, "retries were injected");
}

#[test]
fn silent_corruption_is_caught_and_retried_on_both_routes() {
    // ECC escapes: the device hands back flipped bytes with no error. The
    // page checksum catches it on whichever side consumes the page, a
    // re-read recovers, and query answers never change.
    let flash = FlashConfig {
        silent_corruption_rate: u32::MAX / 16, // ~6% of reads corrupted
        ..FlashConfig::default()
    };
    let mut cfg = SystemConfig::new(DeviceKind::SmartSsd, Layout::Pax);
    cfg.flash = flash;
    let mut sys = smartssd::SystemBuilder::from_config(cfg).build();
    sys.load_table_rows("t", &small_schema(), rows(40_000))
        .unwrap();
    sys.finish_load();
    let query = Query {
        name: "sum under corruption".into(),
        op: OpTemplate::ScanAgg {
            table: "t".into(),
            spec: ScanAggSpec {
                pred: Pred::Const(true),
                aggs: vec![AggSpec::sum(Expr::col(1)), AggSpec::count()],
            },
        },
        finalize: Finalize::AggRow,
    };
    let expected_sum: i128 = (0..40_000i128).sum();
    for route in [Route::Device, Route::Host] {
        sys.clear_cache();
        let r = sys.run(&query, RunOptions::routed(route)).unwrap();
        assert_eq!(r.result.agg_values[0], expected_sum, "route {route:?}");
        assert_eq!(r.result.agg_values[1], 40_000);
    }
}

#[test]
fn open_rejects_when_all_session_slots_taken() {
    // The paper's device grants one thread per session; an OPEN beyond the
    // thread pool must fail crisply and a CLOSE must free the slot.
    let mut dev = SmartSsd::new(
        FlashConfig::default(),
        DeviceConfig {
            max_sessions: 2,
            ..DeviceConfig::default()
        },
    );
    let mut b = smartssd_storage::TableBuilder::new("t", small_schema(), Layout::Pax);
    b.extend(rows(1_000));
    let tref = dev.load_table(&b.finish(), 0).unwrap();
    dev.reset_timing();
    let op = QueryOp::ScanAgg {
        table: tref,
        spec: ScanAggSpec {
            pred: Pred::Const(true),
            aggs: vec![AggSpec::count()],
        },
    };
    let s1 = dev.open(&op, SimTime::ZERO).unwrap();
    let s2 = dev.open(&op, SimTime::ZERO).unwrap();
    assert_eq!(
        dev.open(&op, SimTime::ZERO).unwrap_err(),
        DeviceError::TooManySessions
    );
    dev.close(s1).unwrap();
    // A freed slot is immediately reusable.
    let s3 = dev.open(&op, SimTime::ZERO).unwrap();
    dev.close(s2).unwrap();
    dev.close(s3).unwrap();
}

#[test]
fn get_and_close_on_unknown_or_closed_sessions() {
    let (mut dev, tref) = loaded_device();
    let op = QueryOp::ScanAgg {
        table: tref,
        spec: ScanAggSpec {
            pred: Pred::Const(true),
            aggs: vec![AggSpec::count()],
        },
    };
    // A session id the device never issued.
    let bogus = smartssd_device::SessionId(7_777);
    assert_eq!(
        dev.get(bogus, SimTime::ZERO).unwrap_err(),
        DeviceError::UnknownSession(7_777)
    );
    assert_eq!(
        dev.close(bogus).unwrap_err(),
        DeviceError::UnknownSession(7_777)
    );
    // Double CLOSE: the second one targets a dead id.
    let sid = dev.open(&op, SimTime::ZERO).unwrap();
    dev.close(sid).unwrap();
    assert_eq!(
        dev.close(sid).unwrap_err(),
        DeviceError::UnknownSession(sid.0)
    );
    // GET on the closed session is equally dead — the host must not be
    // able to confuse it with an idempotent post-Done poll.
    assert_eq!(
        dev.get(sid, SimTime::ZERO).unwrap_err(),
        DeviceError::UnknownSession(sid.0)
    );
}

#[test]
fn get_after_done_stays_done_until_close() {
    let (mut dev, tref) = loaded_device();
    let op = QueryOp::ScanAgg {
        table: tref,
        spec: ScanAggSpec {
            pred: Pred::Const(true),
            aggs: vec![AggSpec::count()],
        },
    };
    let sid = dev.open(&op, SimTime::ZERO).unwrap();
    let t = SimTime::from_secs(100);
    assert!(matches!(dev.get(sid, t).unwrap(), GetResponse::Batch(_)));
    // Done is idempotent for as long as the session stays open.
    for _ in 0..3 {
        assert!(matches!(dev.get(sid, t).unwrap(), GetResponse::Done));
    }
    dev.close(sid).unwrap();
    assert_eq!(
        dev.get(sid, t).unwrap_err(),
        DeviceError::UnknownSession(sid.0)
    );
}

#[test]
fn retry_exhaustion_surfaces_as_typed_error_not_panic() {
    // With a zero retry budget every injected uncorrectable error becomes
    // `RetriesExhausted` carrying the failure's LBA, budget, and completion
    // time — the host-visible contract the fallback path is built on.
    let mut dev = SmartSsd::new(
        FlashConfig {
            ecc_fail_rate: u32::MAX,
            ..FlashConfig::default()
        },
        DeviceConfig {
            read_retry_limit: 0,
            ..DeviceConfig::default()
        },
    );
    let mut b = smartssd_storage::TableBuilder::new("t", small_schema(), Layout::Pax);
    b.extend(rows(1_000));
    let tref = dev.load_table(&b.finish(), 0).unwrap();
    dev.reset_timing();
    let op = QueryOp::ScanAgg {
        table: tref,
        spec: ScanAggSpec {
            pred: Pred::Const(true),
            aggs: vec![AggSpec::count()],
        },
    };
    // The device schedules the scan eagerly, so the exhausted retry budget
    // surfaces at OPEN already — typed, not a panic.
    let err = dev.open(&op, SimTime::ZERO).unwrap_err();
    match err {
        DeviceError::RetriesExhausted {
            attempts,
            at,
            cause,
            ..
        } => {
            assert_eq!(attempts, 0);
            assert!(at > SimTime::ZERO, "failure time must be charged");
            assert!(matches!(
                *cause,
                DeviceError::Flash(smartssd_flash::FlashError::Uncorrectable { .. })
            ));
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
    // The failed OPEN left no session behind; all slots stay available.
    assert!(dev.session_work(smartssd_device::SessionId(0)).is_none());
}
