//! Observability integration tests: the simulated-time trace layer must be
//! deterministic, must not perturb the simulation, and its counters must
//! agree exactly with the run's `UtilizationReport`.

use smartssd::Query;
use smartssd::{
    ChromeTraceSink, CounterSink, DeviceKind, Layout, Route, RunOptions, RunReport, System,
    SystemBuilder, TraceSink,
};
use smartssd_workload::{q14, q6, queries, tpch};

const SF: f64 = 0.005; // 30k LINEITEM rows
const SEED: u64 = 7;

fn traced_system(kind: DeviceKind, layout: Layout, sink: impl TraceSink + 'static) -> System {
    let mut sys = SystemBuilder::new(kind, layout).trace(sink).build();
    sys.load_table_rows(
        queries::LINEITEM,
        &tpch::lineitem_schema(),
        tpch::lineitem_rows(SF, SEED),
    )
    .unwrap();
    sys.load_table_rows(
        queries::PART,
        &tpch::part_schema(),
        tpch::part_rows(SF, SEED),
    )
    .unwrap();
    sys.finish_load();
    sys
}

fn chrome_run(kind: DeviceKind, layout: Layout, query: &Query, route: Route) -> RunReport {
    let mut sys = traced_system(kind, layout, ChromeTraceSink::new());
    sys.run(query, RunOptions::routed(route)).unwrap()
}

fn counter_run(kind: DeviceKind, layout: Layout, query: &Query, route: Route) -> RunReport {
    let mut sys = traced_system(kind, layout, CounterSink::new());
    sys.run(query, RunOptions::routed(route)).unwrap()
}

/// Two identical traced runs must serialize to byte-identical Chrome JSON:
/// the trace clock is simulated time, so there is no wall-clock jitter to
/// leak into the output.
#[test]
fn chrome_trace_is_byte_identical_across_runs() {
    for route in [Route::Device, Route::Host] {
        let a = chrome_run(DeviceKind::SmartSsd, Layout::Pax, &q6(), route);
        let b = chrome_run(DeviceKind::SmartSsd, Layout::Pax, &q6(), route);
        let ja = a.trace.chrome_json().expect("chrome trace present");
        let jb = b.trace.chrome_json().expect("chrome trace present");
        assert_eq!(a.result.elapsed, b.result.elapsed);
        assert_eq!(ja, jb, "trace for {route:?} route differs between runs");
        assert!(ja.starts_with("{\"displayTimeUnit\":\"ns\""));
    }
}

/// Attaching a sink must not change the simulation: elapsed time and answers
/// are identical with and without tracing.
#[test]
fn tracing_does_not_perturb_the_simulation() {
    let mut plain = SystemBuilder::new(DeviceKind::SmartSsd, Layout::Pax).build();
    plain
        .load_table_rows(
            queries::LINEITEM,
            &tpch::lineitem_schema(),
            tpch::lineitem_rows(SF, SEED),
        )
        .unwrap();
    plain.finish_load();
    let base = plain.run(&q6(), RunOptions::default()).unwrap();
    assert!(base.trace.is_none(), "no sink attached -> no trace");

    let traced = chrome_run(DeviceKind::SmartSsd, Layout::Pax, &q6(), base.route);
    assert_eq!(base.result.elapsed, traced.result.elapsed);
    assert_eq!(base.result.agg_values, traced.result.agg_values);
}

/// The single top-level "run" span must cover the whole run exactly: its
/// busy-ns counter equals the report's simulated elapsed time, and the
/// Chrome trace carries it at ts=0 under pid 0.
#[test]
fn run_span_duration_equals_report_elapsed() {
    for route in [Route::Device, Route::Host] {
        let rep = counter_run(DeviceKind::SmartSsd, Layout::Pax, &q6(), route);
        let counters = rep.trace.counters().expect("counter trace present");
        assert_eq!(
            counters.busy_ns("run"),
            rep.result.elapsed.as_nanos(),
            "run span for {route:?} route must equal elapsed"
        );

        let rep = chrome_run(DeviceKind::SmartSsd, Layout::Pax, &q6(), route);
        let json = rep.trace.chrome_json().unwrap();
        assert!(
            json.contains("\"name\":\"run\",\"cat\":\"run\",\"ph\":\"X\",\"ts\":0"),
            "chrome trace must carry the top-level run span at ts=0"
        );
    }
}

/// CounterSink busy-ns totals must agree exactly with the run's
/// `UtilizationReport`: both are fed by the same occupancy intervals.
/// Exercised on the paper's Figure 3 (Q6) and Figure 7 (Q14) test beds.
#[test]
fn counter_sink_matches_utilization_report() {
    for (query, route) in [
        (q6(), Route::Device),
        (q6(), Route::Host),
        (q14(), Route::Device),
        (q14(), Route::Host),
    ] {
        let rep = counter_run(DeviceKind::SmartSsd, Layout::Pax, &query, route);
        let counters = rep.trace.counters().expect("counter trace present");
        // Trace category -> utilization component, for every resource the
        // utilization report tracks.
        for (cat, component) in [
            ("flash-dram", "io-device"),
            ("host-interface", "host-interface"),
            ("host-cpu", "host-cpu-thread"),
            ("device-cpu", "device-cpu"),
        ] {
            let util_busy = rep
                .util
                .components
                .get(component)
                .map(|&(busy, _)| busy)
                .unwrap_or(0);
            assert_eq!(
                counters.busy_ns(cat),
                util_busy,
                "{} on {route:?} route: trace '{cat}' vs util '{component}'",
                query.name
            );
        }
    }
}

/// `effective_mbps` signals an unmeasurable (zero-length) run with `None`
/// instead of a fake bandwidth figure.
#[test]
fn effective_mbps_is_optional() {
    let rep = counter_run(DeviceKind::SmartSsd, Layout::Pax, &q6(), Route::Device);
    let mbps = rep
        .effective_mbps(1_000_000)
        .expect("real run has bandwidth");
    assert!(mbps > 0.0);
}
