//! Differential property tests of the multi-tenant serving front door.
//!
//! The load-bearing invariants: the serving layer — tenant tagging,
//! weighted fair queueing, priority lanes, per-tenant bounds, and
//! cancellation — is a pure *scheduling* layer. For any tenant mix, any
//! arrival model, any cancellation schedule, and either admission mode,
//! every query that completes must return answers bit-identical to an
//! isolated run; every arrival must be accounted for exactly once; WFQ
//! must never starve a nonzero-weight tenant; and cancellation must free
//! device session slots without leaking one.

use proptest::prelude::*;
use smartssd::{
    compose, ArrivalModel, ArrivalOutcome, DeviceKind, InterfaceMode, Layout, Route, RoutePolicy,
    RunOptions, SimTime, System, SystemBuilder, TenantLoad, TenantSpec, Workload, WorkloadItem,
    WorkloadOptions, WorkloadReport,
};
use smartssd_exec::spec::ScanAggSpec;
use smartssd_query::{Finalize, OpTemplate, Query};
use smartssd_storage::expr::{AggSpec, CmpOp, Expr, Pred};
use smartssd_storage::{DataType, Datum, Schema, Tuple};
use std::collections::BTreeSet;
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Schema::from_pairs(&[("a", DataType::Int32), ("b", DataType::Int64)])
}

prop_compose! {
    fn arb_row()(a in -1000i32..1000, b in -1_000_000i64..1_000_000) -> Tuple {
        vec![Datum::I32(a), Datum::I64(b)]
    }
}

/// A Q6-shaped aggregation whose predicate varies per tenant, so each
/// tenant's stream produces a distinct, checkable answer.
fn agg_query(cutoff: i64) -> Query {
    Query {
        name: format!("agg<{cutoff}"),
        op: OpTemplate::ScanAgg {
            table: "t".into(),
            spec: ScanAggSpec {
                pred: Pred::Cmp(CmpOp::Lt, Expr::col(0), Expr::lit(cutoff)),
                aggs: vec![AggSpec::count(), AggSpec::sum(Expr::col(1))],
            },
        },
        finalize: Finalize::AggRow,
    }
}

fn build_sys(rows: &[Tuple], max_sessions: usize) -> System {
    let mut sys = SystemBuilder::new(DeviceKind::SmartSsd, Layout::Pax)
        .tweak(|c| c.smart.max_sessions = max_sessions)
        .build();
    sys.load_table_rows("t", &schema(), rows.to_vec()).unwrap();
    sys.finish_load();
    sys
}

/// One generated tenant: predicate cutoff, WFQ weight, priority lane,
/// arrival count, mean gap, model selector, optional abandonment budget.
type TenantGen = (i64, u64, u8, usize, u64, u8, Option<u64>);

fn loads_of(tenants: &[TenantGen]) -> Vec<TenantLoad> {
    tenants
        .iter()
        .enumerate()
        .map(|(i, &(cutoff, weight, lane, count, gap, model, cancel))| {
            let spec = TenantSpec::new(format!("tenant-{i}"))
                .weight(weight)
                .lane(lane);
            let model = match model {
                0 => ArrivalModel::Uniform,
                1 => ArrivalModel::Exponential,
                _ => ArrivalModel::Pareto { alpha: 1.5 },
            };
            let load = TenantLoad::new(spec, agg_query(cutoff), count, SimTime::from_nanos(gap))
                .model(model);
            match cancel {
                Some(budget) => load.cancel_after(SimTime::from_nanos(budget)),
                None => load,
            }
        })
        .collect()
}

fn run_serving(
    rows: &[Tuple],
    loads: &[TenantLoad],
    seed: u64,
    max_sessions: usize,
    fair: bool,
    interface: InterfaceMode,
) -> WorkloadReport {
    let (workload, specs) = compose(loads, seed);
    let mut opts = WorkloadOptions::new()
        .interface(interface)
        .fair_queueing(fair);
    for spec in specs {
        opts = opts.tenant(spec);
    }
    build_sys(rows, max_sessions)
        .run_workload(&workload, opts)
        .unwrap()
}

/// `(completed, rejected, deadline_missed, canceled, failed)` tallied from
/// the outcome log.
fn tally(rep: &WorkloadReport) -> (u64, u64, u64, u64, u64) {
    let mut t = (0u64, 0u64, 0u64, 0u64, 0u64);
    for o in &rep.outcomes {
        match o {
            ArrivalOutcome::Completed(_) => t.0 += 1,
            ArrivalOutcome::Rejected(_) => t.1 += 1,
            ArrivalOutcome::DeadlineMissed(_) => t.2 += 1,
            ArrivalOutcome::Canceled(_) => t.3 += 1,
            ArrivalOutcome::Failed(_) => t.4 += 1,
        }
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Serving is answer-preserving: under any tenant mix, any arrival
    /// model, any cancellation schedule, and either admission mode, every
    /// completion carries exactly the answer an isolated run of its query
    /// produces, every arrival is accounted for exactly once (globally and
    /// per tenant), and the whole schedule replays bit-identically.
    #[test]
    fn serving_answers_match_isolated_runs(
        rows in prop::collection::vec(arb_row(), 50..200),
        tenants in prop::collection::vec(
            (-500i64..500, 1u64..8, 0u8..2, 1usize..4, 0u64..2_000_000,
             0u8..3, prop::option::of(10_000u64..3_000_000)),
            1..4),
        seed in any::<u64>(),
        max_sessions in 1usize..3,
        fair in any::<bool>(),
        direct in any::<bool>(),
    ) {
        let interface = if direct { InterfaceMode::Direct } else { InterfaceMode::Linked };
        let loads = loads_of(&tenants);
        let rep = run_serving(&rows, &loads, seed, max_sessions, fair, interface);

        // Isolated reference answers, one per distinct tenant query.
        let mut iso = build_sys(&rows, 4);
        for (i, &(cutoff, ..)) in tenants.iter().enumerate() {
            let expected = iso
                .run(&agg_query(cutoff), RunOptions::routed(Route::Device))
                .unwrap()
                .result;
            for t in rep.completions.iter().filter(|c| c.query == format!("agg<{cutoff}")) {
                prop_assert_eq!(&t.result.agg_values, &expected.agg_values,
                    "tenant {} answer diverged", i);
                prop_assert_eq!(t.result.scalar, expected.scalar);
            }
        }

        // Conservation: every arrival lands in exactly one outcome bucket,
        // globally and per tenant.
        let total: usize = tenants.iter().map(|t| t.3).sum();
        let (completed, rejected, missed, canceled, failed) = tally(&rep);
        prop_assert_eq!(rep.outcomes.len(), total);
        prop_assert_eq!(completed + rejected + missed + canceled + failed, total as u64);
        prop_assert_eq!(completed, rep.completions.len() as u64);
        prop_assert_eq!(failed, 0, "no faults are injected here");
        prop_assert_eq!(rep.tenants.len(), tenants.len());
        for (i, tr) in rep.tenants.iter().enumerate() {
            prop_assert_eq!(tr.arrivals as usize, tenants[i].3, "tenant {} arrivals", i);
            prop_assert_eq!(
                tr.completed + tr.rejected + tr.deadline_missed + tr.canceled + tr.failed,
                tr.arrivals, "tenant {} conservation", i);
        }
        prop_assert_eq!(rep.tenants.iter().map(|t| t.completed).sum::<u64>(), completed);

        // Determinism: the same seed replays the identical schedule.
        let replay = run_serving(&rows, &loads, seed, max_sessions, fair, interface);
        prop_assert_eq!(rep.makespan, replay.makespan);
        let fin = |r: &WorkloadReport| r.completions.iter()
            .map(|c| (c.index, c.finished_at)).collect::<Vec<_>>();
        prop_assert_eq!(fin(&rep), fin(&replay));
    }

    /// WFQ never starves a nonzero-weight tenant: with every tenant in the
    /// same lane backlogged from time zero against one session slot, each
    /// tenant's first completion lands within the first round of grants
    /// (one per tenant), and every tenant drains completely — whatever the
    /// weight spread.
    #[test]
    fn wfq_never_starves_a_nonzero_weight_tenant(
        rows in prop::collection::vec(arb_row(), 50..150),
        weights in prop::collection::vec(1u64..8, 2..5),
        per_tenant in 2usize..5,
        seed in any::<u64>(),
    ) {
        let tenants: Vec<TenantGen> = weights.iter().enumerate()
            .map(|(i, &w)| (i as i64 * 100 - 200, w, 0u8, per_tenant, 0u64, 0u8, None))
            .collect();
        let loads = loads_of(&tenants);
        let (workload, _) = compose(&loads, seed);
        let rep = run_serving(&rows, &loads, seed, 1, true, InterfaceMode::Direct);

        // Everything drains: no bounds, no deadlines, no cancellation.
        prop_assert_eq!(rep.completions.len(), weights.len() * per_tenant);
        for tr in &rep.tenants {
            prop_assert_eq!(tr.completed, per_tenant as u64);
        }

        // Head-of-line fairness: order completions by finish time; the
        // first `k` grants must touch all `k` backlogged tenants.
        let mut finishes: Vec<(SimTime, u32)> = rep.completions.iter()
            .map(|c| (c.finished_at, workload.items()[c.index].tenant))
            .collect();
        finishes.sort();
        let first_round: BTreeSet<u32> =
            finishes.iter().take(weights.len()).map(|&(_, t)| t).collect();
        prop_assert_eq!(first_round.len(), weights.len(),
            "every tenant must be served within the first round of grants");
    }

    /// Cancellation is leak-free: for any abandonment schedule — budgets
    /// that expire while waiting, mid-flight, or never — every device
    /// session slot returns to the pool, every arrival is accounted for,
    /// and canceled queries are shed at exactly their cancel instant.
    #[test]
    fn cancellation_frees_slots_and_leaks_nothing(
        rows in prop::collection::vec(arb_row(), 50..150),
        items in prop::collection::vec(
            (0u64..500_000, prop::option::of(0u64..2_000_000)), 1..8),
        max_sessions in 1usize..3,
        direct in any::<bool>(),
    ) {
        let interface = if direct { InterfaceMode::Direct } else { InterfaceMode::Linked };
        let mut workload = Workload::new();
        let mut at = SimTime::ZERO;
        let query = Arc::new(agg_query(250));
        for &(gap, cancel) in &items {
            at += SimTime::from_nanos(gap);
            workload.push_item(WorkloadItem {
                query: Arc::clone(&query),
                route: RoutePolicy::Natural,
                arrival: at,
                tenant: 0,
                cancel_at: cancel.map(|c| at + SimTime::from_nanos(c)),
            });
        }
        let mut sys = build_sys(&rows, max_sessions);
        let rep = sys
            .run_workload(&workload, WorkloadOptions::new().interface(interface))
            .unwrap();

        // The fleet leak check, applied to the serving path: after the
        // workload drains, no device session may remain open.
        prop_assert_eq!(sys.open_device_sessions(), 0, "leaked a session slot");

        let (completed, rejected, missed, canceled, failed) = tally(&rep);
        prop_assert_eq!(completed + rejected + missed + canceled + failed,
            items.len() as u64);
        prop_assert_eq!(rejected + missed + failed, 0,
            "no bounds, deadlines, or faults here");
        prop_assert_eq!(canceled, rep.canceled);
        for o in &rep.outcomes {
            if let ArrivalOutcome::Canceled(shed) = o {
                let item = &workload.items()[shed.index];
                prop_assert_eq!(Some(shed.shed_at), item.cancel_at,
                    "a canceled query is shed at exactly its cancel instant");
            }
        }

        // A canceled query never sneaks an answer out: completions and
        // cancellations partition by index.
        let done: BTreeSet<usize> = rep.completions.iter().map(|c| c.index).collect();
        for o in &rep.outcomes {
            if let ArrivalOutcome::Canceled(shed) = o {
                prop_assert!(!done.contains(&shed.index));
            }
        }
    }

    /// The streaming front door is the eager one: for any tenant mix,
    /// `System::run_serving` (k-way merge cursor, nothing materialized)
    /// produces a report identical in every simulated figure to composing
    /// the same loads into a `Workload` and running it eagerly — outcome
    /// by outcome, tenant by tenant, nanosecond by nanosecond.
    #[test]
    fn streaming_run_serving_matches_composed_run_workload(
        rows in prop::collection::vec(arb_row(), 50..150),
        tenants in prop::collection::vec(
            (-500i64..500, 1u64..8, 0u8..2, 1usize..5, 0u64..2_000_000,
             0u8..3, prop::option::of(10_000u64..3_000_000)),
            1..4),
        seed in any::<u64>(),
        max_sessions in 1usize..3,
        fair in any::<bool>(),
        direct in any::<bool>(),
    ) {
        let interface = if direct { InterfaceMode::Direct } else { InterfaceMode::Linked };
        let loads = loads_of(&tenants);
        let eager = run_serving(&rows, &loads, seed, max_sessions, fair, interface);
        let streamed = build_sys(&rows, max_sessions)
            .run_serving(
                &loads,
                seed,
                WorkloadOptions::new().interface(interface).fair_queueing(fair),
            )
            .unwrap();
        assert_reports_identical(&eager, &streamed)?;
    }

    /// The keyed-min-heap admission engine replays the linear-scan
    /// reference grant-for-grant at system level: same loads, same seed,
    /// identical reports — under contention (one slot), mixed lanes and
    /// weights, and live cancellation schedules.
    #[test]
    fn heap_admission_matches_reference_scan_end_to_end(
        rows in prop::collection::vec(arb_row(), 50..150),
        tenants in prop::collection::vec(
            (-500i64..500, 1u64..8, 0u8..2, 1usize..6, 0u64..1_000_000,
             0u8..3, prop::option::of(10_000u64..3_000_000)),
            1..5),
        seed in any::<u64>(),
    ) {
        let loads = loads_of(&tenants);
        let opts = || WorkloadOptions::new().interface(InterfaceMode::Direct);
        let heap = build_sys(&rows, 1)
            .run_serving(&loads, seed, opts())
            .unwrap();
        let scan = build_sys(&rows, 1)
            .run_serving(&loads, seed, opts().reference_admission(true))
            .unwrap();
        assert_reports_identical(&heap, &scan)?;
    }
}

/// Two serving reports agree on every simulated figure (wall-clock does
/// not exist in a report, so this is full behavioral identity).
fn assert_reports_identical(
    a: &WorkloadReport,
    b: &WorkloadReport,
) -> Result<(), proptest::test_runner::TestCaseError> {
    prop_assert_eq!(a.makespan, b.makespan);
    prop_assert_eq!(a.outcomes.len(), b.outcomes.len());
    prop_assert_eq!(tally(a), tally(b));
    let fin = |r: &WorkloadReport| {
        r.completions
            .iter()
            .map(|c| (c.index, c.route, c.arrival, c.finished_at, c.latency))
            .collect::<Vec<_>>()
    };
    prop_assert_eq!(fin(a), fin(b));
    let shed = |r: &WorkloadReport| {
        r.outcomes
            .iter()
            .filter_map(|o| match o {
                ArrivalOutcome::Canceled(s) => Some((s.index, s.shed_at)),
                _ => None,
            })
            .collect::<Vec<_>>()
    };
    prop_assert_eq!(shed(a), shed(b));
    prop_assert_eq!(a.tenants.len(), b.tenants.len());
    for (x, y) in a.tenants.iter().zip(&b.tenants) {
        prop_assert_eq!(&x.name, &y.name);
        prop_assert_eq!(x.arrivals, y.arrivals);
        prop_assert_eq!(x.completed, y.completed);
        prop_assert_eq!(x.canceled, y.canceled);
        prop_assert_eq!(x.latency.p50, y.latency.p50);
        prop_assert_eq!(x.latency.p99, y.latency.p99);
    }
    Ok(())
}
