//! Differential property tests of the concurrent-workload scheduler.
//!
//! The load-bearing invariants: interleaving queries and sharing scans are
//! *timing* optimizations — for any arrival schedule, any session-slot
//! pressure, either interface model, and scan sharing on or off, every
//! query of a workload must return answers bit-identical to an isolated
//! run of the same query. On top of that, scan sharing may never make a
//! workload slower, and a fixed workload must replay to the bit.

use proptest::prelude::*;
use smartssd::{
    DeviceKind, InterfaceMode, Layout, Route, RoutePolicy, RunOptions, SimTime, System,
    SystemBuilder, Workload, WorkloadOptions, WorkloadReport,
};
use smartssd_exec::spec::ScanAggSpec;
use smartssd_query::{Finalize, OpTemplate, Query};
use smartssd_storage::expr::{AggSpec, CmpOp, Expr, Pred};
use smartssd_storage::{DataType, Datum, Schema, Tuple};
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Schema::from_pairs(&[("a", DataType::Int32), ("b", DataType::Int64)])
}

prop_compose! {
    fn arb_row()(a in -1000i32..1000, b in -1_000_000i64..1_000_000) -> Tuple {
        vec![Datum::I32(a), Datum::I64(b)]
    }
}

/// A Q6-shaped aggregation whose predicate varies per query, so concurrent
/// queries in one workload produce distinct answers.
fn agg_query(cutoff: i64) -> Query {
    Query {
        name: format!("agg<{cutoff}"),
        op: OpTemplate::ScanAgg {
            table: "t".into(),
            spec: ScanAggSpec {
                pred: Pred::Cmp(CmpOp::Lt, Expr::col(0), Expr::lit(cutoff)),
                aggs: vec![AggSpec::count(), AggSpec::sum(Expr::col(1))],
            },
        },
        finalize: Finalize::AggRow,
    }
}

fn build_sys(rows: &[Tuple], shared: bool, max_sessions: usize) -> System {
    let mut sys = SystemBuilder::new(DeviceKind::SmartSsd, Layout::Pax)
        .shared_scans(shared)
        .tweak(|c| c.smart.max_sessions = max_sessions)
        .build();
    sys.load_table_rows("t", &schema(), rows.to_vec()).unwrap();
    sys.finish_load();
    sys
}

/// One generated workload query: its predicate cutoff, arrival gap from
/// the previous query, and whether it is forced onto the host route.
type Item = (i64, u64, bool);

fn workload_of(items: &[Item]) -> Workload {
    let mut w = Workload::new();
    let mut at = SimTime::ZERO;
    for &(cutoff, gap, host) in items {
        at += SimTime::from_nanos(gap);
        let route = if host {
            RoutePolicy::Force(Route::Host)
        } else {
            RoutePolicy::Natural
        };
        w.push(agg_query(cutoff), route, at);
    }
    w
}

fn run_workload(
    rows: &[Tuple],
    items: &[Item],
    shared: bool,
    max_sessions: usize,
    interface: InterfaceMode,
) -> WorkloadReport {
    let mut sys = build_sys(rows, shared, max_sessions);
    sys.run_workload(
        &workload_of(items),
        WorkloadOptions::new().interface(interface),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Every completion of a concurrent workload carries exactly the
    /// answer an isolated run of that query produces — for any schedule,
    /// any slot pressure, both interface models, sharing on or off.
    #[test]
    fn workload_answers_match_isolated_runs(
        rows in prop::collection::vec(arb_row(), 50..250),
        items in prop::collection::vec(
            (-500i64..500, 0u64..3_000_000, any::<bool>()), 1..6),
        shared in any::<bool>(),
        direct in any::<bool>(),
        max_sessions in 1usize..4,
    ) {
        // Isolated reference answers, one clean run per query.
        let mut iso = build_sys(&rows, false, 4);
        let expected: Vec<_> = items.iter().map(|&(cutoff, _, host)| {
            let route = if host { Route::Host } else { Route::Device };
            let r = iso.run(&agg_query(cutoff), RunOptions::routed(route)).unwrap();
            (r.result.agg_values, r.result.rows, r.result.scalar)
        }).collect();
        let interface = if direct { InterfaceMode::Direct } else { InterfaceMode::Linked };
        let rep = run_workload(&rows, &items, shared, max_sessions, interface);
        prop_assert_eq!(rep.completions.len(), items.len());
        for (c, exp) in rep.completions.iter().zip(&expected) {
            prop_assert_eq!(&c.result.agg_values, &exp.0, "aggs of {}", c.query);
            prop_assert_eq!(&c.result.rows, &exp.1, "rows of {}", c.query);
            prop_assert_eq!(&c.result.scalar, &exp.2, "scalar of {}", c.query);
            prop_assert!(c.finished_at >= c.arrival);
            prop_assert_eq!(c.latency, c.finished_at.saturating_sub(c.arrival));
        }
    }

    /// Scan sharing is a pure win: under device-only timing the shared
    /// workload never finishes later than the unshared one, and it never
    /// reads more flash pages.
    #[test]
    fn sharing_never_slows_a_workload_down(
        rows in prop::collection::vec(arb_row(), 50..250),
        items in prop::collection::vec(
            (-500i64..500, 0u64..1_000_000), 1..6),
        max_sessions in 1usize..5,
    ) {
        let items: Vec<Item> = items.into_iter()
            .map(|(cutoff, gap)| (cutoff, gap, false))
            .collect();
        let off = run_workload(&rows, &items, false, max_sessions, InterfaceMode::Direct);
        let on = run_workload(&rows, &items, true, max_sessions, InterfaceMode::Direct);
        prop_assert!(on.makespan <= off.makespan,
            "shared {} > unshared {}", on.makespan, off.makespan);
        prop_assert!(on.flash_reads <= off.flash_reads);
        prop_assert_eq!(on.flash_reads + on.shared_hits, off.flash_reads,
            "every page is served exactly once, from flash or the share window");
    }

    /// A fixed workload replays bit-identically: same makespan, same
    /// per-query completion times, same counters.
    #[test]
    fn workloads_are_deterministic(
        rows in prop::collection::vec(arb_row(), 50..200),
        items in prop::collection::vec(
            (-500i64..500, 0u64..2_000_000, any::<bool>()), 1..5),
        shared in any::<bool>(),
    ) {
        let a = run_workload(&rows, &items, shared, 3, InterfaceMode::Linked);
        let b = run_workload(&rows, &items, shared, 3, InterfaceMode::Linked);
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.flash_reads, b.flash_reads);
        prop_assert_eq!(a.shared_hits, b.shared_hits);
        prop_assert_eq!(a.pool_hits, b.pool_hits);
        prop_assert_eq!(a.latency, b.latency);
        let fa: Vec<SimTime> = a.completions.iter().map(|c| c.finished_at).collect();
        let fb: Vec<SimTime> = b.completions.iter().map(|c| c.finished_at).collect();
        prop_assert_eq!(fa, fb);
    }
}

/// The workload trace gives each in-flight query its own lane under the
/// session track, so overlap is visible in Perfetto.
#[test]
fn workload_trace_has_one_lane_per_query() {
    use smartssd::ChromeTraceSink;
    let rows: Vec<Tuple> = (0..5_000)
        .map(|k| vec![Datum::I32(k), Datum::I64(k as i64)])
        .collect();
    let mut sys = SystemBuilder::new(DeviceKind::SmartSsd, Layout::Pax)
        .shared_scans(true)
        .trace(ChromeTraceSink::new())
        .build();
    sys.load_table_rows("t", &schema(), rows).unwrap();
    sys.finish_load();
    let rep = sys
        .run_workload(
            &Workload::burst(&agg_query(1_000), 3),
            WorkloadOptions::default(),
        )
        .unwrap();
    let json = rep.trace.chrome_json().expect("chrome trace").to_string();
    for lane in ["\"session/0\"", "\"session/1\"", "\"session/2\""] {
        assert!(json.contains(lane), "missing lane {lane}");
    }
    assert!(
        json.contains("\"query\""),
        "missing per-query lifetime span"
    );
    assert!(
        json.contains("\"workload\""),
        "missing top-level workload span"
    );
}
