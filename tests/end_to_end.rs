//! End-to-end integration: the paper's queries on every device x layout
//! configuration, with results cross-checked against an in-memory reference
//! executor.

use smartssd::{DeviceKind, Layout, Route, RunOptions, System, SystemBuilder};
use smartssd_storage::Tuple;
use smartssd_workload::{
    dates::date_to_days, join_query, q14, q6, queries, synthetic::synthetic_schema, synthetic64_r,
    synthetic64_s, tpch, tpch::lineitem_cols as l,
};

const SF: f64 = 0.005; // 30k LINEITEM rows
const SYNTH: f64 = 0.0001; // 40k S rows, 100 R rows
const SEED: u64 = 7;

fn tpch_system(kind: DeviceKind, layout: Layout) -> System {
    let mut sys = SystemBuilder::new(kind, layout).build();
    sys.load_table_rows(
        queries::LINEITEM,
        &tpch::lineitem_schema(),
        tpch::lineitem_rows(SF, SEED),
    )
    .unwrap();
    sys.load_table_rows(
        queries::PART,
        &tpch::part_schema(),
        tpch::part_rows(SF, SEED),
    )
    .unwrap();
    sys.finish_load();
    sys
}

fn synth_system(kind: DeviceKind, layout: Layout) -> System {
    let mut sys = SystemBuilder::new(kind, layout).build();
    sys.load_table_rows(
        queries::SYNTH_R,
        &synthetic_schema(),
        synthetic64_r(SYNTH, SEED),
    )
    .unwrap();
    sys.load_table_rows(
        queries::SYNTH_S,
        &synthetic_schema(),
        synthetic64_s(SYNTH, SYNTH, SEED),
    )
    .unwrap();
    sys.finish_load();
    sys
}

/// Reference Q6 computed directly over the generated rows.
fn q6_reference() -> i128 {
    let lo = date_to_days(1994, 1, 1);
    let hi = date_to_days(1995, 1, 1);
    tpch::lineitem_rows(SF, SEED)
        .filter(|t| {
            let ship = t[l::SHIPDATE].as_i64();
            let disc = t[l::DISCOUNT].as_i64();
            let qty = t[l::QUANTITY].as_i64();
            ship >= lo && ship < hi && disc > 5 && disc < 7 && qty < 24
        })
        .map(|t| (t[l::EXTENDEDPRICE].as_i64() * t[l::DISCOUNT].as_i64()) as i128)
        .sum()
}

#[test]
fn q6_identical_on_all_configurations() {
    let expected = q6_reference();
    assert!(expected > 0, "reference sum must be non-trivial");
    for kind in [DeviceKind::Hdd, DeviceKind::Ssd, DeviceKind::SmartSsd] {
        for layout in [Layout::Nsm, Layout::Pax] {
            let mut sys = tpch_system(kind, layout);
            let r = sys.run(&q6(), RunOptions::default()).unwrap();
            assert_eq!(
                r.result.agg_values[0], expected,
                "Q6 mismatch on {kind:?}/{layout}"
            );
        }
    }
}

#[test]
fn q6_device_route_equals_host_route_on_same_system() {
    let mut sys = tpch_system(DeviceKind::SmartSsd, Layout::Pax);
    let dev = sys.run(&q6(), RunOptions::routed(Route::Device)).unwrap();
    sys.clear_cache();
    let host = sys.run(&q6(), RunOptions::routed(Route::Host)).unwrap();
    assert_eq!(dev.result.agg_values, host.result.agg_values);
    assert_eq!(dev.route, Route::Device);
    assert_eq!(host.route, Route::Host);
    // Same answer, different time: the pushdown should win on PAX.
    assert!(dev.result.elapsed < host.result.elapsed);
}

/// Reference Q14 over the raw generated rows.
fn q14_reference() -> f64 {
    let parts: Vec<Tuple> = tpch::part_rows(SF, SEED).collect();
    let lo = date_to_days(1995, 9, 1);
    let hi = date_to_days(1995, 10, 1);
    let mut promo: i128 = 0;
    let mut total: i128 = 0;
    for t in tpch::lineitem_rows(SF, SEED) {
        let ship = t[l::SHIPDATE].as_i64();
        if ship < lo || ship >= hi {
            continue;
        }
        let pk = t[l::PARTKEY].as_i64() as usize;
        let part = &parts[pk - 1];
        let rev = (t[l::EXTENDEDPRICE].as_i64() * (100 - t[l::DISCOUNT].as_i64())) as i128;
        total += rev;
        if part[tpch::part_cols::TYPE].as_bytes().starts_with(b"PROMO") {
            promo += rev;
        }
    }
    if total == 0 {
        0.0
    } else {
        100.0 * promo as f64 / total as f64
    }
}

#[test]
fn q14_identical_on_all_configurations_and_sane() {
    let expected = q14_reference();
    // One part type in six is PROMO; promo_revenue should be in that
    // neighbourhood, like TPC-H's reference answer (~16%).
    assert!(
        (8.0..30.0).contains(&expected),
        "promo_revenue reference {expected}"
    );
    for kind in [DeviceKind::Ssd, DeviceKind::SmartSsd] {
        for layout in [Layout::Nsm, Layout::Pax] {
            let mut sys = tpch_system(kind, layout);
            let r = sys.run(&q14(), RunOptions::default()).unwrap();
            let got = r.result.scalar.expect("q14 produces a scalar");
            assert!(
                (got - expected).abs() < 1e-9,
                "Q14 mismatch on {kind:?}/{layout}: {got} vs {expected}"
            );
        }
    }
}

/// Reference join over the raw generated rows.
fn join_reference(selectivity: f64) -> Vec<(i64, i64)> {
    let r_rows: Vec<Tuple> = synthetic64_r(SYNTH, SEED).collect();
    let cutoff = (smartssd_workload::synthetic::SEL_DOMAIN as f64 * selectivity) as i64;
    let mut out = Vec::new();
    for s_row in synthetic64_s(SYNTH, SYNTH, SEED) {
        if s_row[2].as_i64() >= cutoff {
            continue;
        }
        let fk = s_row[1].as_i64();
        // R.col_1 is the dense PK 1..=n.
        if fk >= 1 && fk <= r_rows.len() as i64 {
            let r_row = &r_rows[(fk - 1) as usize];
            out.push((s_row[0].as_i64(), r_row[1].as_i64()));
        }
    }
    out
}

#[test]
fn join_rows_identical_on_all_configurations() {
    for &sel in &[0.01, 0.5] {
        let expected = join_reference(sel);
        assert!(!expected.is_empty());
        for kind in [DeviceKind::Ssd, DeviceKind::SmartSsd] {
            for layout in [Layout::Nsm, Layout::Pax] {
                let mut sys = synth_system(kind, layout);
                let r = sys.run(&join_query(sel), RunOptions::default()).unwrap();
                let got: Vec<(i64, i64)> = r
                    .result
                    .rows
                    .iter()
                    .map(|t| (t[0].as_i64(), t[1].as_i64()))
                    .collect();
                assert_eq!(got, expected, "join sel={sel} on {kind:?}/{layout}");
            }
        }
    }
}

#[test]
fn elapsed_and_energy_are_positive_and_consistent() {
    let mut sys = tpch_system(DeviceKind::SmartSsd, Layout::Pax);
    let r = sys.run(&q6(), RunOptions::default()).unwrap();
    assert!(r.result.elapsed.as_nanos() > 0);
    assert!(r.energy.system_kj() > 0.0);
    assert!(r.energy.io_kj() > 0.0);
    assert!(r.energy.io_kj() < r.energy.system_kj());
    assert!(r.energy.over_idle_kj() < r.energy.system_kj());
    // The bottleneck on a pushed-down Q6/PAX must be the device CPU
    // (Section 4.2.1's explanation of 1.7x instead of 2.8x).
    let (bottleneck, util) = r.util.bottleneck().unwrap();
    assert_eq!(bottleneck, "device-cpu", "util report: {}", r.util);
    assert!(util > 0.9);
}

#[test]
fn hdd_is_much_slower_than_both_ssds() {
    let q = q6();
    let mut hdd = tpch_system(DeviceKind::Hdd, Layout::Nsm);
    let mut ssd = tpch_system(DeviceKind::Ssd, Layout::Nsm);
    let t_hdd = hdd.run(&q, RunOptions::default()).unwrap().result.elapsed;
    let t_ssd = ssd.run(&q, RunOptions::default()).unwrap().result.elapsed;
    let ratio = t_hdd.as_secs_f64() / t_ssd.as_secs_f64();
    assert!(ratio > 4.0, "HDD/SSD ratio {ratio:.1}");
}

#[test]
fn warm_cache_removes_device_traffic() {
    let mut sys = tpch_system(DeviceKind::Ssd, Layout::Nsm);
    let cold = sys.run(&q6(), RunOptions::default()).unwrap();
    assert!(cold.util.utilization("io-device").unwrap_or(0.0) > 0.0);
    sys.warm_cache(queries::LINEITEM, 1.0).unwrap();
    assert!(sys.residency(queries::LINEITEM) > 0.99);
    let warm = sys.run(&q6(), RunOptions::default()).unwrap();
    // Fully cached: the device is never touched, and the run is no slower
    // (the paper's host Q6 is CPU-bound, so elapsed barely moves — that is
    // precisely why the Discussion says cached data kills pushdown's
    // advantage rather than the host's).
    assert_eq!(warm.util.utilization("io-device"), Some(0.0));
    assert!(warm.result.elapsed <= cold.result.elapsed);
    assert_eq!(warm.result.agg_values, cold.result.agg_values);
}
