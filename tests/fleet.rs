//! Differential tests of the Smart-SSD fleet coordinator.
//!
//! The fleet's load-bearing property: scatter/gather over N shards is an
//! *answer-preserving* transformation. For any table contents, any shard
//! count, either interface mode, with or without speculation, and under
//! injected device crashes, the merged fleet answer is bit-identical to a
//! single-device run of the same query. Faults and speculation may move
//! timing; they must never move answers.

use proptest::prelude::*;
use smartssd::{
    DeviceKind, FleetOptions, InterfaceMode, Layout, QueryResult, Route, RunOptions, SmartSsdFleet,
    SystemBuilder,
};
use smartssd_exec::spec::ScanAggSpec;
use smartssd_query::{Finalize, OpTemplate, Query};
use smartssd_storage::expr::{AggSpec, CmpOp, Expr, Pred};
use smartssd_storage::{DataType, Datum, Schema, Tuple};
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Schema::from_pairs(&[("k", DataType::Int32), ("v", DataType::Int64)])
}

prop_compose! {
    fn arb_row()(k in -1000i32..1000, v in -1_000_000i64..1_000_000) -> Tuple {
        vec![Datum::I32(k), Datum::I64(v)]
    }
}

/// COUNT/SUM/MIN/MAX under a selective predicate — exercises every merge
/// shape, including empty-shard partials.
fn agg_query(cutoff: i64) -> Query {
    Query {
        name: "fleet agg".into(),
        op: OpTemplate::ScanAgg {
            table: "t".into(),
            spec: ScanAggSpec {
                pred: Pred::Cmp(CmpOp::Lt, Expr::col(0), Expr::lit(cutoff)),
                aggs: vec![
                    AggSpec::count(),
                    AggSpec::sum(Expr::col(1)),
                    AggSpec::min(Expr::col(1)),
                    AggSpec::max(Expr::col(1)),
                ],
            },
        },
        finalize: Finalize::AggRow,
    }
}

/// A ratio finalize over two partials — breaks if anything finalizes
/// per-shard instead of once over the merged states (the AVG trap).
fn ratio_query(cutoff: i64) -> Query {
    Query {
        name: "fleet ratio".into(),
        op: OpTemplate::ScanAgg {
            table: "t".into(),
            spec: ScanAggSpec {
                pred: Pred::Cmp(CmpOp::Lt, Expr::col(0), Expr::lit(cutoff)),
                aggs: vec![AggSpec::count(), AggSpec::sum(Expr::col(1))],
            },
        },
        finalize: Finalize::RatioPct { num: 1, den: 0 },
    }
}

/// The single-device reference: the same query pushed down on one System.
fn single_device_reference(rows: &[Tuple], query: &Query) -> QueryResult {
    let mut sys = SystemBuilder::new(DeviceKind::SmartSsd, Layout::Pax).build();
    sys.load_table_rows("t", &schema(), rows.to_vec()).unwrap();
    sys.finish_load();
    sys.run(query, RunOptions::routed(Route::Device))
        .unwrap()
        .result
}

fn build_fleet(n: usize, opts: FleetOptions, rows: &[Tuple]) -> SmartSsdFleet {
    let mut fleet = SystemBuilder::new(DeviceKind::SmartSsd, Layout::Pax).build_fleet(n, opts);
    fleet
        .load_partitioned("t", &schema(), rows.to_vec())
        .unwrap();
    fleet.finish_load();
    fleet
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fleet merged answers == single-device answers for any shard count,
    /// interface mode, speculation setting, and crash schedule — and no
    /// run, faulted or clean, leaves a session open anywhere.
    #[test]
    fn fleet_matches_single_device_for_any_shape(
        rows in prop::collection::vec(arb_row(), 1..400),
        n_dev in 1usize..=16,
        cutoff in -400i64..400,
        linked in any::<bool>(),
        speculate in any::<bool>(),
        // 0 = no crash; k > 0 = crash device (k - 1) % n_dev.
        crash_sel in 0usize..=16,
    ) {
        let crash = crash_sel.checked_sub(1);
        let opts = FleetOptions {
            interface: if linked { InterfaceMode::Linked } else { InterfaceMode::Direct },
            speculate,
            // Force the speculation path whenever it is enabled at all.
            straggler_factor: 0.0,
            ..FleetOptions::default()
        };
        for query in [agg_query(cutoff), ratio_query(cutoff)] {
            let expect = single_device_reference(&rows, &query);
            let mut fleet = build_fleet(n_dev, opts.clone(), &rows);
            if let Some(c) = crash {
                // One crashed device out of N degrades its shard to the
                // host path; answers must not move.
                fleet.device_mut(c % n_dev).config_mut().fault_rates.crash_rate = u32::MAX;
            }
            let r = fleet.run_agg(&query).unwrap();
            prop_assert_eq!(&r.result.agg_values, &expect.agg_values, "aggs, {}", query.name);
            prop_assert_eq!(r.result.scalar, expect.scalar, "scalar, {}", query.name);
            if crash.is_some() {
                let c = crash.unwrap() % n_dev;
                prop_assert_eq!(r.shards[c].route, Route::Host, "crashed shard must degrade");
                prop_assert!(r.faults.device_crashes >= 1);
            }
            for d in 0..n_dev {
                prop_assert_eq!(fleet.device(d).open_sessions(), 0, "device {} leaked", d);
            }
        }
    }

    /// Speculative re-run of the slowest shard races the device session
    /// against a host copy; whichever wins, the answers are identical to
    /// the non-speculating run — only timing may move.
    #[test]
    fn speculation_changes_only_timing(
        rows in prop::collection::vec(arb_row(), 100..400),
        n_dev in 2usize..=4,
        cutoff in -400i64..400,
    ) {
        let query = agg_query(cutoff);
        let base = FleetOptions { speculate: false, ..FleetOptions::default() };
        let spec = FleetOptions { speculate: true, straggler_factor: 0.0, ..FleetOptions::default() };
        let mut plain = build_fleet(n_dev, base, &rows);
        let mut racing = build_fleet(n_dev, spec, &rows);
        let a = plain.run_agg(&query).unwrap();
        let b = racing.run_agg(&query).unwrap();
        prop_assert_eq!(&a.result.agg_values, &b.result.agg_values);
        prop_assert_eq!(a.result.scalar, b.result.scalar);
        prop_assert!(b.speculated >= 1, "factor 0.0 must force speculation");
        for d in 0..n_dev {
            prop_assert_eq!(racing.device(d).open_sessions(), 0);
        }
    }
}

/// Thread-parallel device execution must not cost determinism: two
/// identical fleets produce byte-identical reports, timing included.
#[test]
fn fleet_runs_are_deterministic() {
    let rows: Vec<Tuple> = (0..50_000)
        .map(|k| vec![Datum::I32(k), Datum::I64(k as i64)])
        .collect();
    let query = agg_query(400);
    let run = |speculate: bool| {
        let opts = FleetOptions {
            speculate,
            straggler_factor: 0.0,
            ..FleetOptions::default()
        };
        let mut fleet = build_fleet(8, opts, &rows);
        let r = fleet.run_agg(&query).unwrap();
        (
            r.result.agg_values.clone(),
            r.result.elapsed,
            r.shards
                .iter()
                .map(|s| (s.route, s.finished_at))
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(false), run(false));
    assert_eq!(run(true), run(true));
}
