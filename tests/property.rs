//! Property-based tests of the system's core invariants.
//!
//! The load-bearing property of the whole reproduction: for *any* table
//! contents and *any* supported query, the pushed-down execution inside the
//! Smart SSD returns exactly what the host engine returns — and both match
//! a naive in-memory reference. Layout (NSM vs PAX) must never change
//! results, only timing.

use proptest::prelude::*;
use smartssd::{DeviceKind, Layout, Route, RunOptions, System, SystemBuilder};
use smartssd_exec::spec::{ColRef, JoinOutput, ScanAggSpec, ScanSpec};
use smartssd_query::{Finalize, OpTemplate, Query};
use smartssd_storage::expr::{AggSpec, CmpOp, Expr, Pred};
use smartssd_storage::{DataType, Datum, Schema, Tuple};
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Schema::from_pairs(&[
        ("a", DataType::Int32),
        ("b", DataType::Int64),
        ("s", DataType::Char(8)),
    ])
}

prop_compose! {
    fn arb_row()(a in -1000i32..1000, b in -1_000_000i64..1_000_000, tag in 0u8..4) -> Tuple {
        let s = match tag {
            0 => "PROMO",
            1 => "STD",
            2 => "PROMO XY",
            _ => "ECON",
        };
        vec![Datum::I32(a), Datum::I64(b), Datum::str(s)]
    }
}

fn arb_cmp() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

prop_compose! {
    fn arb_pred()(op in arb_cmp(), lit in -500i64..500, op2 in arb_cmp(), lit2 in -800_000i64..800_000, like in any::<bool>()) -> Pred {
        let mut atoms = vec![
            Pred::Cmp(op, Expr::col(0), Expr::lit(lit)),
            Pred::Cmp(op2, Expr::col(1), Expr::lit(lit2)),
        ];
        if like {
            atoms.push(Pred::LikePrefix { col: 2, prefix: b"PROMO".as_slice().into() });
        }
        Pred::And(atoms)
    }
}

/// Builds identical systems in both layouts and on both routes, runs the
/// query everywhere, and checks all four agree.
fn assert_all_routes_agree(rows: &[Tuple], query: &Query) -> (Vec<i128>, Vec<Tuple>) {
    let mut reference: Option<(Vec<i128>, Vec<Tuple>)> = None;
    for layout in [Layout::Nsm, Layout::Pax] {
        let mut sys = SystemBuilder::new(DeviceKind::SmartSsd, layout).build();
        sys.load_table_rows("t", &schema(), rows.to_vec()).unwrap();
        sys.finish_load();
        for route in [Route::Device, Route::Host] {
            sys.clear_cache();
            let r = sys.run(query, RunOptions::routed(route)).unwrap();
            let got = (r.result.agg_values.clone(), r.result.rows.clone());
            match &reference {
                None => reference = Some(got),
                Some(exp) => assert_eq!(
                    exp, &got,
                    "disagreement on {layout}/{route:?} for {}",
                    query.name
                ),
            }
        }
    }
    reference.unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn scan_agg_agrees_across_layouts_and_routes(
        rows in prop::collection::vec(arb_row(), 1..400),
        pred in arb_pred(),
    ) {
        let query = Query {
            name: "prop scan agg".into(),
            op: OpTemplate::ScanAgg {
                table: "t".into(),
                spec: ScanAggSpec {
                    pred: pred.clone(),
                    aggs: vec![
                        AggSpec::count(),
                        AggSpec::sum(Expr::col(1)),
                        AggSpec::min(Expr::col(0)),
                        AggSpec::max(Expr::col(1)),
                    ],
                },
            },
            finalize: Finalize::AggRow,
        };
        let (aggs, _) = assert_all_routes_agree(&rows, &query);
        // Cross-check against a naive reference over the raw rows.
        let matching: Vec<&Tuple> = rows.iter().filter(|t| {
            let mut pass = true;
            // Reference evaluation of the generated predicate.
            if let Pred::And(atoms) = &pred {
                for a in atoms {
                    match a {
                        Pred::Cmp(op, Expr::Col(c), Expr::Lit(l)) => {
                            pass &= op.matches(t[*c].as_i64().cmp(l));
                        }
                        Pred::LikePrefix { col, prefix } => {
                            pass &= t[*col].as_bytes().starts_with(prefix);
                        }
                        _ => unreachable!(),
                    }
                    if !pass { break; }
                }
            }
            pass
        }).collect();
        prop_assert_eq!(aggs[0], matching.len() as i128);
        let sum: i128 = matching.iter().map(|t| t[1].as_i64() as i128).sum();
        prop_assert_eq!(aggs[1], sum);
    }

    #[test]
    fn scan_rows_agree_across_layouts_and_routes(
        rows in prop::collection::vec(arb_row(), 1..300),
        pred in arb_pred(),
    ) {
        let query = Query {
            name: "prop scan".into(),
            op: OpTemplate::Scan {
                table: "t".into(),
                spec: ScanSpec { pred, project: vec![2, 0] },
            },
            finalize: Finalize::Rows,
        };
        let (_, out) = assert_all_routes_agree(&rows, &query);
        // Projection schema: (s, a); all output rows must originate from
        // the input multiset.
        for t in &out {
            prop_assert_eq!(t.len(), 2);
        }
        prop_assert!(out.len() <= rows.len());
    }
}

/// Join property: pushdown == host == nested-loop reference.
fn join_systems(build_rows: &[Tuple], probe_rows: &[Tuple], layout: Layout) -> System {
    let mut sys = SystemBuilder::new(DeviceKind::SmartSsd, layout).build();
    sys.load_table_rows("build", &schema(), build_rows.to_vec())
        .unwrap();
    sys.load_table_rows("probe", &schema(), probe_rows.to_vec())
        .unwrap();
    sys.finish_load();
    sys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn join_agrees_with_nested_loop_reference(
        build in prop::collection::vec(arb_row(), 1..60),
        probe in prop::collection::vec(arb_row(), 1..200),
        cutoff in -500i64..500,
        filter_first in any::<bool>(),
    ) {
        let query = Query {
            name: "prop join".into(),
            op: OpTemplate::Join {
                probe: "probe".into(),
                build: "build".into(),
                build_key: 0,
                build_payload: vec![1],
                probe_key: 0,
                probe_pred: Pred::Cmp(CmpOp::Lt, Expr::col(0), Expr::lit(cutoff)),
                filter_first,
                output: JoinOutput::Project(vec![ColRef::Probe(1), ColRef::Build(0)]),
            },
            finalize: Finalize::Rows,
        };
        // Nested-loop reference (order: probe row order, then build order).
        let mut expected: Vec<(i64, i64)> = Vec::new();
        for p in &probe {
            if p[0].as_i64() >= cutoff { continue; }
            for b in &build {
                if b[0].as_i64() == p[0].as_i64() {
                    expected.push((p[1].as_i64(), b[1].as_i64()));
                }
            }
        }
        for layout in [Layout::Nsm, Layout::Pax] {
            let mut sys = join_systems(&build, &probe, layout);
            for route in [Route::Device, Route::Host] {
                sys.clear_cache();
                let r = sys.run(&query, RunOptions::routed(route)).unwrap();
                let mut got: Vec<(i64, i64)> = r.result.rows.iter()
                    .map(|t| (t[0].as_i64(), t[1].as_i64()))
                    .collect();
                // Match ordering irrelevant for the property: sort both.
                let mut exp = expected.clone();
                exp.sort_unstable();
                got.sort_unstable();
                prop_assert_eq!(got, exp);
            }
        }
    }

    #[test]
    fn timing_is_deterministic(
        rows in prop::collection::vec(arb_row(), 50..200),
    ) {
        let query = Query {
            name: "det".into(),
            op: OpTemplate::ScanAgg {
                table: "t".into(),
                spec: ScanAggSpec {
                    pred: Pred::Const(true),
                    aggs: vec![AggSpec::count()],
                },
            },
            finalize: Finalize::AggRow,
        };
        let run = || {
            let mut sys = SystemBuilder::new(DeviceKind::SmartSsd, Layout::Pax).build();
            sys.load_table_rows("t", &schema(), rows.clone()).unwrap();
            sys.finish_load();
            sys.run(&query, RunOptions::default()).unwrap().result.elapsed
        };
        prop_assert_eq!(run(), run());
    }
}
