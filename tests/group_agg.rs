//! Integration tests for grouped aggregation (the TPC-H Q1 extension):
//! pushdown == host == reference, memory-grant enforcement, and the repro
//! experiment path.

use smartssd::{DeviceKind, Layout, Route, RunOptions, System, SystemBuilder, SystemConfig};
use smartssd_exec::spec::GroupAggSpec;
use smartssd_query::{Finalize, OpTemplate, Query};
use smartssd_storage::expr::{AggSpec, Expr, Pred};
use smartssd_storage::{DataType, Datum, Schema, Tuple};
use smartssd_workload::{dates::date_to_days, q1, queries, tpch, tpch::lineitem_cols as l};
use std::collections::BTreeMap;

const SF: f64 = 0.005;
const SEED: u64 = 11;

fn tpch_system(kind: DeviceKind, layout: Layout) -> System {
    let mut sys = SystemBuilder::new(kind, layout).build();
    sys.load_table_rows(
        queries::LINEITEM,
        &tpch::lineitem_schema(),
        tpch::lineitem_rows(SF, SEED),
    )
    .unwrap();
    sys.finish_load();
    sys
}

/// Grouping key: (returnflag, linestatus) bytes.
type Q1Key = (u8, u8);
/// Per-group sums: (sum_qty, sum_base, sum_disc, sum_charge, count).
type Q1Sums = (i64, i64, i64, i64, i64);

/// Reference Q1 over the raw generated rows.
fn q1_reference() -> BTreeMap<Q1Key, Q1Sums> {
    let cutoff = date_to_days(1998, 9, 2);
    let mut acc: BTreeMap<Q1Key, Q1Sums> = BTreeMap::new();
    for t in tpch::lineitem_rows(SF, SEED) {
        if t[l::SHIPDATE].as_i64() > cutoff {
            continue;
        }
        let key = (
            t[l::RETURNFLAG].as_bytes()[0],
            t[l::LINESTATUS].as_bytes()[0],
        );
        let qty = t[l::QUANTITY].as_i64();
        let base = t[l::EXTENDEDPRICE].as_i64();
        let disc = base * (100 - t[l::DISCOUNT].as_i64());
        let charge = disc * (100 + t[l::TAX].as_i64());
        let e = acc.entry(key).or_default();
        e.0 += qty;
        e.1 += base;
        e.2 += disc;
        e.3 += charge;
        e.4 += 1;
    }
    acc
}

#[test]
fn q1_identical_on_all_routes_and_matches_reference() {
    let expected = q1_reference();
    assert!(expected.len() >= 4, "expect several (flag,status) groups");
    for layout in [Layout::Nsm, Layout::Pax] {
        let mut sys = tpch_system(DeviceKind::SmartSsd, layout);
        for route in [Route::Device, Route::Host] {
            sys.clear_cache();
            let r = sys.run(&q1(), RunOptions::routed(route)).unwrap();
            assert_eq!(r.result.rows.len(), expected.len(), "{layout}/{route:?}");
            for row in &r.result.rows {
                let key = (row[0].as_bytes()[0], row[1].as_bytes()[0]);
                let exp = expected.get(&key).expect("unexpected group");
                assert_eq!(row[2].as_i64(), exp.0, "sum_qty {key:?}");
                assert_eq!(row[3].as_i64(), exp.1, "sum_base {key:?}");
                assert_eq!(row[4].as_i64(), exp.2, "sum_disc {key:?}");
                assert_eq!(row[5].as_i64(), exp.3, "sum_charge {key:?}");
                assert_eq!(row[6].as_i64(), exp.4, "count {key:?}");
            }
        }
    }
}

#[test]
fn q1_breaks_even_on_prototype_but_wins_on_scaled_device() {
    // Q1 aggregates every row (selectivity ~98%, five aggregates, wide
    // expressions): the paper-era device CPU saturates and pushdown only
    // breaks even — consistent with Section 5's call for more device
    // hardware before heavier operators pay off.
    let mut sys = tpch_system(DeviceKind::SmartSsd, Layout::Pax);
    let dev = sys.run(&q1(), RunOptions::routed(Route::Device)).unwrap();
    sys.clear_cache();
    let host = sys.run(&q1(), RunOptions::routed(Route::Host)).unwrap();
    assert_eq!(dev.result.rows, host.result.rows);
    let ratio = host.result.elapsed.as_secs_f64() / dev.result.elapsed.as_secs_f64();
    assert!(
        (0.7..1.3).contains(&ratio),
        "prototype Q1 pushdown should be near break-even, got {ratio:.2}x"
    );
    // A scaled-up device (Section 5's roadmap) turns Q1 into a clear win.
    let mut cfg = SystemConfig::new(DeviceKind::SmartSsd, Layout::Pax);
    cfg.smart.cpu_cores = 8;
    cfg.smart.cpu_hz = 1_000_000_000;
    cfg.flash.channels = 16;
    cfg.flash.dram_bw = 6_400_000_000;
    let mut big = SystemBuilder::from_config(cfg).build();
    big.load_table_rows(
        queries::LINEITEM,
        &tpch::lineitem_schema(),
        tpch::lineitem_rows(SF, SEED),
    )
    .unwrap();
    big.finish_load();
    let scaled = big.run(&q1(), RunOptions::routed(Route::Device)).unwrap();
    assert_eq!(scaled.result.rows, host.result.rows);
    let speedup = host.result.elapsed.as_secs_f64() / scaled.result.elapsed.as_secs_f64();
    assert!(speedup > 2.0, "scaled-device Q1 speedup {speedup:.2}x");
}

#[test]
fn high_cardinality_grouping_exceeds_grant_and_falls_back() {
    // Group by a near-unique key with a tiny memory grant: the device
    // aborts mid-scan and the System reruns on the host.
    let schema = Schema::from_pairs(&[("k", DataType::Int32), ("v", DataType::Int64)]);
    let mut cfg = SystemConfig::new(DeviceKind::SmartSsd, Layout::Pax);
    cfg.smart.session_memory_bytes = 8 * 1024;
    let mut sys = SystemBuilder::from_config(cfg).build();
    let rows: Vec<Tuple> = (0..50_000)
        .map(|k| vec![Datum::I32(k), Datum::I64(k as i64)])
        .collect();
    sys.load_table_rows("t", &schema, rows).unwrap();
    sys.finish_load();
    let query = Query {
        name: "high-card group".into(),
        op: OpTemplate::GroupAgg {
            table: "t".into(),
            spec: GroupAggSpec {
                pred: Pred::Const(true),
                group_by: vec![0],
                aggs: vec![AggSpec::sum(Expr::col(1))],
            },
        },
        finalize: Finalize::Rows,
    };
    let r = sys.run(&query, RunOptions::default()).unwrap();
    assert_eq!(r.route, Route::Host, "device must reject the grant");
    assert_eq!(r.result.rows.len(), 50_000);
}

#[test]
fn group_rows_are_deterministically_ordered() {
    let mut sys = tpch_system(DeviceKind::SmartSsd, Layout::Pax);
    let a = sys.run(&q1(), RunOptions::default()).unwrap();
    let b = sys.run(&q1(), RunOptions::default()).unwrap();
    assert_eq!(a.result.rows, b.result.rows);
    // BTreeMap ordering: keys ascend byte-wise.
    let keys: Vec<Vec<u8>> = a
        .result
        .rows
        .iter()
        .map(|r| {
            let mut k = r[0].as_bytes().to_vec();
            k.extend_from_slice(r[1].as_bytes());
            k
        })
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
}
