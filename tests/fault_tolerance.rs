//! Differential fault-injection tests.
//!
//! The contract of the recovery machinery (device `read_page`, host
//! `read_via_link`, and the query-layer `SessionDriver`): injected flash
//! faults may cost *simulated time*, and are counted in [`FaultCounters`],
//! but they never change query answers and never break determinism.

use proptest::prelude::*;
use smartssd::{DeviceKind, Layout, Route, RunOptions, RunReport, SystemBuilder, SystemConfig};
use smartssd_exec::spec::ScanAggSpec;
use smartssd_flash::FlashConfig;
use smartssd_query::{Finalize, OpTemplate, Query};
use smartssd_sim::SimTime;
use smartssd_storage::expr::{AggSpec, Expr, Pred};
use smartssd_storage::{DataType, Datum, Schema, Tuple};
use std::sync::Arc;

const N_ROWS: i32 = 20_000;

fn small_schema() -> Arc<Schema> {
    Schema::from_pairs(&[("k", DataType::Int32), ("v", DataType::Int64)])
}

fn rows(n: i32) -> impl Iterator<Item = Tuple> {
    (0..n).map(|k| vec![Datum::I32(k), Datum::I64(k as i64)])
}

fn sum_query() -> Query {
    Query {
        name: "fault sum".into(),
        op: OpTemplate::ScanAgg {
            table: "t".into(),
            spec: ScanAggSpec {
                pred: Pred::Const(true),
                aggs: vec![AggSpec::sum(Expr::col(1)), AggSpec::count()],
            },
        },
        finalize: Finalize::AggRow,
    }
}

/// Builds the standard single-table system with the given flash fault
/// rates, applies `tweak` to the config, and runs the sum query on `route`.
fn run_case(
    flash: FlashConfig,
    route: Route,
    tweak: impl FnOnce(&mut SystemConfig),
) -> Result<RunReport, smartssd::RunError> {
    let mut cfg = SystemConfig::new(DeviceKind::SmartSsd, Layout::Pax);
    cfg.flash = flash;
    tweak(&mut cfg);
    let mut sys = SystemBuilder::from_config(cfg).build();
    sys.load_table_rows("t", &small_schema(), rows(N_ROWS))
        .unwrap();
    sys.finish_load();
    sys.run(&sum_query(), RunOptions::routed(route))
}

fn expected_sum() -> i128 {
    (0..N_ROWS as i128).sum()
}

/// Shared assertion for both read paths (device `read_page` under
/// `Route::Device`, host `read_via_link` under `Route::Host`): when every
/// read suffers one recoverable uncorrectable error, the retries are posted
/// at the failed reads' completion times, so recovery shows up as strictly
/// more simulated elapsed time — never as a changed answer.
fn assert_recovery_is_charged(route: Route) {
    let clean = run_case(FlashConfig::default(), route, |_| {}).unwrap();
    let faulty = run_case(
        FlashConfig {
            ecc_fail_rate: u32::MAX,
            ..FlashConfig::default()
        },
        route,
        |_| {},
    )
    .unwrap();
    assert_eq!(clean.result.agg_values[0], expected_sum());
    assert_eq!(
        clean.result.agg_values, faulty.result.agg_values,
        "route {route:?}: answers must survive injected faults"
    );
    assert_eq!(faulty.route, route, "retries recover in place, no fallback");
    assert!(
        faulty.faults.read_retries > 0,
        "route {route:?}: retries must be counted"
    );
    assert!(!clean.faults.any(), "clean run must report zero faults");
    assert!(
        faulty.result.elapsed > clean.result.elapsed,
        "route {route:?}: recovery must cost simulated time \
         (clean {:?}, faulty {:?})",
        clean.result.elapsed,
        faulty.result.elapsed
    );
}

#[test]
fn device_read_retries_are_charged_at_failure_time() {
    assert_recovery_is_charged(Route::Device);
}

#[test]
fn host_read_retries_are_charged_at_failure_time() {
    assert_recovery_is_charged(Route::Host);
}

#[test]
fn retry_exhaustion_falls_back_to_host() {
    // A zero retry budget turns the first uncorrectable error into
    // `RetriesExhausted`; the session driver closes the session and the
    // system transparently re-runs on the host (whose own retry budget is
    // fixed and nonzero, so it succeeds).
    let faulty = FlashConfig {
        ecc_fail_rate: u32::MAX,
        ..FlashConfig::default()
    };
    let r = run_case(faulty.clone(), Route::Device, |cfg| {
        cfg.smart.read_retry_limit = 0;
    })
    .unwrap();
    assert_eq!(r.route, Route::Host, "run must degrade to the host");
    assert_eq!(r.result.agg_values[0], expected_sum());
    assert_eq!(r.faults.fallbacks, 1);
    assert!(
        r.faults.wasted_ns > 0,
        "the failed device attempt cost time"
    );

    // With `carry_wasted_time`, the wasted device time is added to the
    // fallback run's elapsed instead of being silently discarded.
    let carried = run_case(faulty, Route::Device, |cfg| {
        cfg.smart.read_retry_limit = 0;
        cfg.session_policy.carry_wasted_time = true;
    })
    .unwrap();
    assert_eq!(carried.route, Route::Host);
    assert_eq!(carried.result.agg_values, r.result.agg_values);
    assert_eq!(
        carried.result.elapsed,
        r.result.elapsed + SimTime::from_nanos(r.faults.wasted_ns),
        "carried elapsed = plain fallback elapsed + wasted device time"
    );
}

#[test]
fn session_timeout_falls_back_to_host() {
    let r = run_case(FlashConfig::default(), Route::Device, |cfg| {
        cfg.session_policy.session_timeout = SimTime::from_nanos(1);
    })
    .unwrap();
    assert_eq!(r.route, Route::Host);
    assert_eq!(r.result.agg_values[0], expected_sum());
    assert_eq!(r.faults.fallbacks, 1);
}

#[test]
fn fault_counters_json_has_every_field() {
    let faulty = FlashConfig {
        silent_corruption_rate: u32::MAX / 8,
        ..FlashConfig::default()
    };
    let r = run_case(faulty, Route::Device, |_| {}).unwrap();
    assert!(r.faults.escapes_detected > 0);
    let json = r.faults.to_json();
    for key in [
        "ecc_retries",
        "ecc_failures",
        "escapes_detected",
        "read_retries",
        "get_retries",
        "fallbacks",
        "wasted_ns",
        "device_crashes",
        "killed_sessions",
        "reset_downtime_ns",
    ] {
        assert!(
            json.contains(&format!("\"{key}\": ")),
            "missing {key}: {json}"
        );
    }
    assert!(json.contains(&format!(
        "\"escapes_detected\": {}",
        r.faults.escapes_detected
    )));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Under *any* injected fault rates, on either route: answers are
    /// bit-identical to a fault-free run, execution is deterministic
    /// (identically-built systems agree on elapsed time and counters), and
    /// recovery never makes the run faster than the clean one.
    #[test]
    fn faults_never_change_answers(
        ecc_retry_rate in prop_oneof![Just(0u32), any::<u32>()],
        ecc_fail_rate in prop_oneof![Just(0u32), Just(u32::MAX), any::<u32>()],
        silent_corruption_rate in prop_oneof![Just(0u32), any::<u32>()],
        device_route in any::<bool>(),
    ) {
        let route = if device_route { Route::Device } else { Route::Host };
        let faulty_cfg = FlashConfig {
            ecc_retry_rate,
            ecc_fail_rate,
            silent_corruption_rate,
            ..FlashConfig::default()
        };
        let clean = run_case(FlashConfig::default(), route, |_| {}).unwrap();
        let a = run_case(faulty_cfg.clone(), route, |_| {}).unwrap();
        let b = run_case(faulty_cfg, route, |_| {}).unwrap();

        // Answers: bit-identical to the fault-free run.
        prop_assert_eq!(&a.result.rows, &clean.result.rows);
        prop_assert_eq!(&a.result.agg_values, &clean.result.agg_values);
        prop_assert_eq!(a.result.agg_values[0], expected_sum());

        // Determinism: two identically-built systems agree exactly.
        prop_assert_eq!(a.result.elapsed, b.result.elapsed);
        prop_assert_eq!(a.faults, b.faults);
        prop_assert_eq!(a.route, b.route);

        // Recovery costs time (or nothing, when a sparse retry hides in
        // the slack of a non-critical resource) — it never saves time.
        prop_assert!(a.result.elapsed >= clean.result.elapsed);
        // At saturation every read fails once; that much recovery cannot
        // hide in resource slack on either route.
        if ecc_fail_rate == u32::MAX {
            prop_assert!(a.faults.read_retries > 0);
            prop_assert!(a.result.elapsed > clean.result.elapsed);
        }
    }
}
