#!/usr/bin/env bash
# Repo gate: formatting, lints, tier-1 tests, and a benchmark smoke run.
#
#   scripts/check.sh          # everything
#   scripts/check.sh fast     # skip the benchmark smoke run
#
# Mirrors what CI should enforce; every step fails the script.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc --no-deps (-D warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release
cargo test -q

if [[ "${1:-}" != "fast" ]]; then
    echo "== benchmark smoke (criterion --quick, kernel groups only) =="
    cargo bench -q -p smartssd-bench --bench kernels -- --quick scan_agg
    cargo bench -q -p smartssd-bench --bench kernels -- --quick group_agg
    echo "== repro kernels --quick (BENCH_kernels.json) =="
    cargo run -q --release -p smartssd-bench --bin repro -- kernels --quick
    echo "== repro trace --quick (trace_*.json + BENCH_trace.json) =="
    cargo run -q --release -p smartssd-bench --bin repro -- trace --quick
    echo "== repro concurrency --quick (BENCH_concurrency.json) =="
    cargo run -q --release -p smartssd-bench --bin repro -- concurrency --quick
    echo "== repro degrade --quick (BENCH_degrade.json) =="
    cargo run -q --release -p smartssd-bench --bin repro -- degrade --quick
    echo "== repro fleet --quick (BENCH_fleet.json) =="
    cargo run -q --release -p smartssd-bench --bin repro -- fleet --quick
    echo "== repro simspeed --quick (BENCH_simspeed.json) =="
    cargo run -q --release -p smartssd-bench --bin repro -- simspeed --quick
fi

echo "OK"
