#!/usr/bin/env bash
# Repo gate: formatting, lints, tier-1 tests, and a benchmark smoke run.
#
#   scripts/check.sh          # everything
#   scripts/check.sh fast     # skip the benchmark smoke run
#
# Mirrors what CI should enforce; every step fails the script.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc --no-deps (-D warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release
cargo test -q

if [[ "${1:-}" != "fast" ]]; then
    echo "== benchmark smoke (criterion --quick, kernel groups only) =="
    cargo bench -q -p smartssd-bench --bench kernels -- --quick scan_agg
    cargo bench -q -p smartssd-bench --bench kernels -- --quick group_agg
    # Every out-of-`all` repro subcommand, quick scale: each writes its
    # BENCH_<sub>.json (trace also writes trace_*.json).
    for sub in kernels trace faults concurrency degrade fleet serving simspeed servescale chaos; do
        echo "== repro ${sub} --quick (BENCH_${sub}.json) =="
        cargo run -q --release -p smartssd-bench --bin repro -- "${sub}" --quick
    done
fi

echo "OK"
