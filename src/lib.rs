#![warn(missing_docs)]

//! Root crate: re-exports the `smartssd` facade so workspace-level
//! integration tests and examples use one import path.
pub use smartssd::*;
