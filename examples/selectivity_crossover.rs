//! Selectivity crossover: where pushdown stops paying off.
//!
//! Sweeps the paper's selection-with-join query (Figure 5) from 0.1% to
//! 100% selectivity and shows the Smart SSD advantage eroding as the result
//! volume approaches the input volume — plus what the pushdown planner
//! decides at each point, and whether it matches the measured winner.
//!
//! ```text
//! cargo run --release --example selectivity_crossover
//! ```

use smartssd::{DeviceKind, Layout, Route, RunOptions, System, SystemBuilder};
use smartssd_query::{choose_route, PlannerConfig, PlannerInputs};
use smartssd_workload::{
    join_query, queries, synthetic::synthetic_schema, synthetic64_r, synthetic64_s,
};

const SCALE: f64 = 0.0002; // 80k S rows, 200 R rows

fn build(kind: DeviceKind, layout: Layout) -> System {
    let mut sys = SystemBuilder::new(kind, layout).build();
    sys.load_table_rows(
        queries::SYNTH_R,
        &synthetic_schema(),
        synthetic64_r(SCALE, 3),
    )
    .expect("load R");
    sys.load_table_rows(
        queries::SYNTH_S,
        &synthetic_schema(),
        synthetic64_s(SCALE, SCALE, 3),
    )
    .expect("load S");
    sys.finish_load();
    sys
}

fn main() {
    let mut ssd = build(DeviceKind::Ssd, Layout::Nsm);
    let mut smart = build(DeviceKind::SmartSsd, Layout::Pax);
    let planner = PlannerConfig::default();

    println!(
        "selection-with-join: SELECT S.col_1, R.col_2 WHERE R.col_1 = S.col_2 AND S.col_3 < v"
    );
    println!();
    println!("  sel%     SSD[s]   SmartSSD[s]   speedup   planner says   rows out");
    for sel in [0.001, 0.01, 0.05, 0.10, 0.25, 0.50, 0.75, 1.00] {
        let query = join_query(sel);
        ssd.clear_cache();
        smart.clear_cache();
        let r_ssd = ssd.run(&query, RunOptions::default()).expect("ssd");
        let r_smart = smart.run(&query, RunOptions::default()).expect("smart");
        // Ask the planner what it would have chosen, given an oracle
        // selectivity estimate.
        let op = query.resolve(smart.catalog()).expect("resolve");
        let (route, _) = choose_route(
            &op,
            &planner,
            &PlannerInputs {
                selectivity: sel,
                tuples_per_page: 31.0,
                ..PlannerInputs::default()
            },
        );
        let speedup = r_ssd.result.elapsed.as_secs_f64() / r_smart.result.elapsed.as_secs_f64();
        let planner_right = match route {
            Route::Device => speedup >= 1.0,
            Route::Host => speedup <= 1.05,
        };
        println!(
            "  {:>5.1}  {:>8.4}   {:>11.4}   {:>6.2}x   {:<8} {}   {:>7}",
            sel * 100.0,
            r_ssd.result.elapsed.as_secs_f64(),
            r_smart.result.elapsed.as_secs_f64(),
            speedup,
            format!("{route:?}"),
            if planner_right {
                "(agrees)"
            } else {
                "(differs)"
            },
            r_smart.result.rows.len(),
        );
        assert_eq!(
            r_ssd.result.rows, r_smart.result.rows,
            "both paths must return identical rows"
        );
    }
    println!();
    println!("The Smart SSD wins while results are small (it reads at ~1,560 MB/s");
    println!("internally vs ~550 MB/s across SAS); at 100% selectivity the output");
    println!("itself must cross the narrow interface and the advantage evaporates —");
    println!("the paper's Figure 5.");
}
