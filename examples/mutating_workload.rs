//! Updates vs pushdown: the Discussion section's correctness rule, live.
//!
//! The paper (Section 4.3): "If there is a copy of the data in the buffer
//! pool that is more current than the data in the SSD, pushing the query
//! processing to the S[S]D may not be feasible. ... If the database is
//! immutable then some of these problems become easier to handle."
//!
//! This example interleaves queries with updates: while a table has
//! uncheckpointed changes, the system refuses the device route (pushdown
//! would read stale flash pages) and runs on the host; after a checkpoint,
//! pushdown resumes.
//!
//! ```text
//! cargo run --release --example mutating_workload
//! ```

use smartssd::{DeviceKind, Layout, RunOptions, SystemBuilder};
use smartssd_exec::spec::ScanAggSpec;
use smartssd_query::{Finalize, OpTemplate, Query};
use smartssd_storage::expr::{AggSpec, Expr, Pred};
use smartssd_storage::{DataType, Datum, Schema, Tuple};

fn main() {
    let schema = Schema::from_pairs(&[("id", DataType::Int32), ("balance", DataType::Int64)]);
    let rows = |scale: i64| {
        (0..100_000).map(move |k| vec![Datum::I32(k), Datum::I64(k as i64 % 1000 * scale)] as Tuple)
    };

    let mut sys = SystemBuilder::new(DeviceKind::SmartSsd, Layout::Pax).build();
    sys.load_table_rows("accounts", &schema, rows(1)).unwrap();
    sys.finish_load();

    let total = Query {
        name: "total balance".into(),
        op: OpTemplate::ScanAgg {
            table: "accounts".into(),
            spec: ScanAggSpec {
                pred: Pred::Const(true),
                aggs: vec![AggSpec::sum(Expr::col(1))],
            },
        },
        finalize: Finalize::AggRow,
    };

    let step = |label: &str, r: &smartssd::RunReport| {
        println!(
            "{label:<34} route={:<7} sum={:<12} elapsed={}",
            format!("{:?}", r.route),
            r.result.agg_values[0],
            r.result.elapsed
        );
    };

    println!("1) cold analytic query: pushdown is legal and wins");
    let r = sys.run(&total, RunOptions::default()).unwrap();
    step("   SELECT SUM(balance)", &r);

    println!("\n2) a transaction updates accounts in the buffer pool");
    sys.mark_dirty("accounts");
    let r = sys.run(&total, RunOptions::default()).unwrap();
    step("   SELECT SUM(balance) (dirty)", &r);
    assert_eq!(
        r.route,
        smartssd::Route::Host,
        "stale pushdown must be refused"
    );

    println!("\n3) checkpoint flushes to the device; pushdown resumes");
    sys.checkpoint("accounts").unwrap();
    let r = sys.run(&total, RunOptions::default()).unwrap();
    step("   SELECT SUM(balance)", &r);
    assert_eq!(r.route, smartssd::Route::Device);

    println!("\n4) bulk reload (10x balances): new extent written, old trimmed");
    sys.update_table_rows("accounts", rows(10)).unwrap();
    let r = sys.run(&total, RunOptions::default()).unwrap();
    step("   SELECT SUM(balance)", &r);

    println!("\nThe planner's other rules (cached data, result volume, device");
    println!("saturation) are cost decisions; this one is correctness — which is");
    println!("why the paper calls immutable data the easy case for Smart SSDs.");
}
