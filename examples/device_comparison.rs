//! Device comparison: the paper's evaluation in miniature.
//!
//! Runs TPC-H Q6 and Q14 across the paper's three devices (10K SAS HDD,
//! regular SAS SSD, Smart SSD) and both layouts, printing elapsed time,
//! energy, and who the bottleneck was — a compact reproduction of Figures
//! 3 and 7 plus Table 3.
//!
//! ```text
//! cargo run --release --example device_comparison
//! ```

use smartssd::{DeviceKind, Layout, RunOptions, RunReport, System, SystemBuilder};
use smartssd_workload::{q14, q6, queries, tpch};

const SF: f64 = 0.02;

fn build(kind: DeviceKind, layout: Layout) -> System {
    let mut sys = SystemBuilder::new(kind, layout).build();
    sys.load_table_rows(
        queries::LINEITEM,
        &tpch::lineitem_schema(),
        tpch::lineitem_rows(SF, 1),
    )
    .expect("load lineitem");
    sys.load_table_rows(queries::PART, &tpch::part_schema(), tpch::part_rows(SF, 1))
        .expect("load part");
    sys.finish_load();
    sys
}

fn describe(r: &RunReport) -> String {
    let bottleneck = r
        .util
        .bottleneck()
        .map(|(n, u)| format!("{n} {:.0}%", u * 100.0))
        .unwrap_or_default();
    format!(
        "{:>9.3}s   {:>8.4} kJ   {:<8}  {}",
        r.result.elapsed.as_secs_f64(),
        r.energy.system_kj(),
        format!("{:?}", r.route),
        bottleneck
    )
}

fn main() {
    let configs: [(DeviceKind, Layout); 4] = [
        (DeviceKind::Hdd, Layout::Nsm),
        (DeviceKind::Ssd, Layout::Nsm),
        (DeviceKind::SmartSsd, Layout::Nsm),
        (DeviceKind::SmartSsd, Layout::Pax),
    ];
    for (query, name, scalar) in [(q6(), "TPC-H Q6", false), (q14(), "TPC-H Q14", true)] {
        println!("=== {name} at SF {SF} ===");
        println!("  config                 elapsed       energy     route     bottleneck");
        let mut baseline = None;
        for (kind, layout) in configs {
            if kind == DeviceKind::Hdd && scalar {
                continue; // the paper's Q14 figure has no HDD bar
            }
            let mut sys = build(kind, layout);
            let r = sys.run(&query, RunOptions::default()).expect("run");
            if kind == DeviceKind::Ssd {
                baseline = Some(r.result.elapsed.as_secs_f64());
            }
            let speedup = baseline
                .map(|b| format!("  ({:.2}x vs SSD)", b / r.result.elapsed.as_secs_f64()))
                .unwrap_or_default();
            println!(
                "  {:<9} / {layout:<3}  {}{speedup}",
                kind.to_string(),
                describe(&r)
            );
            if scalar {
                if let Some(v) = r.result.scalar {
                    println!("      promo_revenue = {v:.4}%");
                }
            }
        }
        println!();
    }
}
