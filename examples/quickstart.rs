//! Quickstart: load TPC-H LINEITEM onto an emulated Smart SSD and push
//! TPC-H Q6 into the device.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use smartssd::{DeviceKind, Layout, RunOptions, SystemBuilder};
use smartssd_workload::{q6, queries, tpch};

fn main() {
    // A Smart SSD system with tables stored in the PAX layout — the
    // configuration the paper found best for in-device processing.
    let mut sys = SystemBuilder::new(DeviceKind::SmartSsd, Layout::Pax).build();

    // Generate and load LINEITEM at a laptop-friendly scale factor (the
    // paper uses SF 100 = 600M rows; timing ratios are scale-invariant).
    let sf = 0.01;
    sys.load_table_rows(
        queries::LINEITEM,
        &tpch::lineitem_schema(),
        tpch::lineitem_rows(sf, 42),
    )
    .expect("load lineitem");
    sys.finish_load();

    // Run TPC-H Q6. On this system the operator ships to the device as
    // OPEN parameters; the host collects the aggregate via GET.
    let report = sys.run(&q6(), RunOptions::default()).expect("run q6");

    println!("query   : {}", report.query);
    println!("device  : {} ({} layout)", report.device, report.layout);
    println!("route   : {:?}", report.route);
    // Q6's sum is scaled by 100x100 (price cents x discount percent).
    let revenue = report.result.agg_values[0] as f64 / 10_000.0;
    println!("revenue : {revenue:.2}");
    println!("elapsed : {} (simulated)", report.result.elapsed);
    println!(
        "energy  : {:.4} kJ system, {:.4} kJ I/O subsystem",
        report.energy.system_kj(),
        report.energy.io_kj()
    );
    println!("\nutilization:\n{}", report.util);
    if let Some((name, util)) = report.util.bottleneck() {
        println!("bottleneck: {name} at {:.0}%", util * 100.0);
    }
}
