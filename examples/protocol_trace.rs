//! The Section 3 protocol, at command level.
//!
//! Drives a Smart SSD directly through the `OPEN`/`GET`/`CLOSE` session
//! protocol — including marshalling the operator into the raw byte payload
//! an `OPEN` command would carry over SAS — rather than through the
//! `System` facade. Useful for seeing exactly what crosses the bus.
//!
//! ```text
//! cargo run --release --example protocol_trace
//! ```

use smartssd_device::{DeviceConfig, GetResponse, SmartSsd};
use smartssd_exec::{decode_op, encode_op};
use smartssd_flash::FlashConfig;
use smartssd_query::Catalog;
use smartssd_sim::SimTime;
use smartssd_storage::{Layout, TableBuilder};
use smartssd_workload::{q6, queries, tpch};

fn main() {
    // A bare device: flash + embedded CPU + session runtime.
    let mut dev = SmartSsd::new(FlashConfig::default(), DeviceConfig::default());

    // Load LINEITEM pages onto the device and register the extent.
    let mut b = TableBuilder::new(queries::LINEITEM, tpch::lineitem_schema(), Layout::Pax);
    b.extend(tpch::lineitem_rows(0.005, 42));
    let img = b.finish();
    let tref = dev.load_table(&img, 0).expect("load");
    dev.reset_timing();
    println!(
        "table   : {} pages at LBA {}..{}",
        tref.num_pages,
        tref.first_lba,
        tref.first_lba + tref.num_pages
    );

    // The host side: resolve Q6 against the catalog, then marshal it into
    // the OPEN payload exactly as it would cross the SAS link.
    let mut catalog = Catalog::new();
    catalog.register(queries::LINEITEM, tref);
    let op = q6().resolve(&catalog).expect("resolve");
    let payload = encode_op(&op);
    println!("OPEN    : payload {} bytes", payload.len());
    print!("          ");
    for b in payload.iter().take(24) {
        print!("{b:02x} ");
    }
    println!("...");
    // Round-trip sanity: the device-side decoder reproduces the operator.
    assert_eq!(payload, encode_op(&decode_op(&payload).expect("decode")));

    // OPEN: the device unmarshals, validates, grants resources, runs.
    let sid = dev.open_raw(&payload, SimTime::ZERO).expect("open");
    println!("OPEN    -> session id {}", sid.0);

    // GET: poll until results are ready (the device is a passive target).
    let mut t = SimTime::ZERO;
    let mut polls = 0u32;
    loop {
        polls += 1;
        match dev.get(sid, t).expect("get") {
            GetResponse::Running { ready_at } => {
                println!("GET #{polls}  -> RUNNING (ready at {ready_at})");
                t = ready_at;
            }
            GetResponse::Batch(batch) => {
                let aggs = batch.aggs.expect("q6 aggregates");
                println!(
                    "GET #{polls}  -> BATCH: {} bytes, ready at {}, SUM = {}",
                    batch.bytes,
                    batch.ready_at,
                    aggs[0].finish()
                );
            }
            GetResponse::Done => {
                println!("GET #{polls}  -> DONE");
                break;
            }
        }
    }

    // CLOSE: release the session's thread and memory grants.
    dev.close(sid).expect("close");
    println!("CLOSE   -> session {} released", sid.0);
    println!(
        "\ndevice work: {} tuples decoded, {} predicate atoms evaluated",
        dev.total_work().tuples(),
        dev.total_work().pred_atoms
    );
}
