//! An array of Smart SSDs as a micro parallel DBMS.
//!
//! The paper's Discussion (Section 4.3) imagines "the host machine ...
//! simply the coordinator that stages computation across an array of Smart
//! SSDs, making the system look like a parallel DBMS". This example
//! partitions LINEITEM across 1..8 devices, pushes Q6 into every device in
//! parallel, gathers the aggregate partials on the host, and reports the
//! scaling curve.
//!
//! ```text
//! cargo run --release --example smart_array
//! ```

use smartssd::{DeviceKind, Layout, SmartSsdArray, SystemConfig};
use smartssd_workload::{q6, queries, tpch};

const SF: f64 = 0.02;

fn main() {
    println!("Q6 over LINEITEM (SF {SF}) partitioned across a Smart SSD array");
    println!();
    println!("  devices   elapsed[s]   speedup   revenue");
    let mut base = None;
    let mut reference_sum = None;
    for n in [1usize, 2, 4, 8] {
        let mut arr = SmartSsdArray::new(n, SystemConfig::new(DeviceKind::SmartSsd, Layout::Pax));
        arr.load_partitioned(
            queries::LINEITEM,
            &tpch::lineitem_schema(),
            tpch::lineitem_rows(SF, 11),
        )
        .expect("load");
        arr.finish_load();
        let r = arr.run_agg(&q6()).expect("array q6");
        let secs = r.elapsed.as_secs_f64();
        let base_secs = *base.get_or_insert(secs);
        // Partitioning must never change the answer.
        let sum = r.agg_values[0];
        let reference = *reference_sum.get_or_insert(sum);
        assert_eq!(sum, reference, "partitioned aggregate diverged");
        println!(
            "  {n:>7}   {secs:>9.4}   {:>6.2}x   {:.2}",
            base_secs / secs,
            sum as f64 / 10_000.0
        );
    }
    println!();
    println!("Each device scans only its partition at internal bandwidth; the");
    println!("host merges a handful of aggregate partials. Scaling is close to");
    println!("linear until coordination overheads (shared SAS link, GET polls)");
    println!("show up — the \"parallel DBMS in a chassis\" the paper sketches.");
}
